"""Learning-based load model (paper §5.2, Fig. 3).

The expected load on each port can simply be *measured* during the
first iterations of the collective.  The caveat the paper calls out: a
transient fault present during those first iterations pollutes the
baseline.  When the fault later heals, the load re-balances more
evenly; the predictor recognizes that signature — a significant
deviation *toward* balance — and replaces its baseline with fresh
measurements instead of declaring a fault.
"""

from __future__ import annotations

import statistics
from enum import Enum

from ...simnet.counters import IterationRecord
from .base import LoadPrediction, LoadPredictor, PortPrediction, PredictionError


class LearningEvent(Enum):
    """What the learning predictor did with one iteration's records."""

    NONE = "none"  # baseline held; records available for detection
    WARMUP = "warmup"  # still collecting the initial baseline
    BASELINE_READY = "baseline_ready"  # warmup finished this iteration
    HEALING_DETECTED = "healing"  # re-balancing observed; re-learning
    REBASELINED = "rebaselined"  # replacement baseline finished


def imbalance(volumes: list[float]) -> float:
    """Max relative deviation from the mean across ports.

    Zero for a perfectly even split; grows when some ports carry less
    (or more) than their fair share.  This is the "how balanced is the
    network" score used to tell healing (imbalance drops) from a new
    fault (imbalance grows).
    """
    positive = [v for v in volumes if v > 0]
    if len(positive) < 2:
        return 0.0
    mean = statistics.fmean(positive)
    if mean <= 0:
        return 0.0
    return max(abs(v - mean) / mean for v in positive)


class LearnedPredictor(LoadPredictor):
    """Baseline-from-observation predictor with healing rebaseline.

    Parameters
    ----------
    warmup_iterations:
        Iterations averaged into each baseline.
    deviation_trigger:
        Relative per-port deviation from the baseline that counts as "a
        significant change happened" (compared alongside the detector's
        own threshold).
    balance_margin:
        How much the fabric-wide imbalance must *drop* for the change to
        be classified as healing rather than a new fault.
    """

    name = "learned"

    def __init__(
        self,
        warmup_iterations: int = 3,
        deviation_trigger: float = 0.01,
        balance_margin: float = 0.005,
    ) -> None:
        if warmup_iterations < 1:
            raise PredictionError("warmup needs at least one iteration")
        if deviation_trigger <= 0 or balance_margin <= 0:
            raise PredictionError("triggers must be positive")
        self.warmup_iterations = warmup_iterations
        self.deviation_trigger = deviation_trigger
        self.balance_margin = balance_margin
        self._pending: list[list[IterationRecord]] = []
        self._prediction: LoadPrediction | None = None
        self._baseline_imbalance: float = 0.0
        #: (iteration_index, prediction) for every baseline adopted —
        #: the time series Fig. 3 plots.
        self.baseline_history: list[tuple[int, LoadPrediction]] = []
        self._iterations_seen = 0

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._prediction is not None

    def predict(self) -> LoadPrediction:
        if self._prediction is None:
            raise PredictionError(
                "learning predictor has no baseline yet (warmup in progress)"
            )
        return self._prediction

    # ------------------------------------------------------------------
    def update(self, records: list[IterationRecord]) -> LearningEvent:
        """Feed one iteration's observed records."""
        self._iterations_seen += 1
        if self._prediction is None:
            return self._warmup_step(records)

        observed_imbalance = self._fabric_imbalance(records)
        deviation = self._max_deviation(records)
        rebalanced = (
            observed_imbalance < self._baseline_imbalance - self.balance_margin
        )
        if deviation > self.deviation_trigger and rebalanced:
            # The network got *more* symmetric: a transient fault healed.
            # Discard the polluted baseline and re-learn from here.
            self._prediction = None
            self._pending = [records]
            return LearningEvent.HEALING_DETECTED
        return LearningEvent.NONE

    def _warmup_step(self, records: list[IterationRecord]) -> LearningEvent:
        self._pending.append(records)
        if len(self._pending) < self.warmup_iterations:
            return LearningEvent.WARMUP
        self._adopt_baseline()
        first = len(self.baseline_history) == 1
        return LearningEvent.BASELINE_READY if first else LearningEvent.REBASELINED

    # ------------------------------------------------------------------
    def _adopt_baseline(self) -> None:
        n_leaves = len(self._pending[0])
        k = len(self._pending)
        per_leaf = []
        for leaf in range(n_leaves):
            ports: dict[int, float] = {}
            senders: dict[tuple[int, int], float] = {}
            for records in self._pending:
                record = records[leaf]
                if record.leaf != leaf:
                    raise PredictionError("records must be ordered by leaf")
                for spine, size in record.port_bytes.items():
                    ports[spine] = ports.get(spine, 0.0) + size / k
                for key, size in record.sender_bytes.items():
                    senders[key] = senders.get(key, 0.0) + size / k
            per_leaf.append(
                PortPrediction(leaf=leaf, port_bytes=ports, sender_bytes=senders)
            )
        self._prediction = LoadPrediction(per_leaf=tuple(per_leaf))
        self._baseline_imbalance = max(
            (imbalance(list(p.port_bytes.values())) for p in per_leaf),
            default=0.0,
        )
        self._pending = []
        self.baseline_history.append((self._iterations_seen - 1, self._prediction))

    def _fabric_imbalance(self, records: list[IterationRecord]) -> float:
        return max(
            (imbalance(list(r.port_bytes.values())) for r in records), default=0.0
        )

    def _max_deviation(self, records: list[IterationRecord]) -> float:
        worst = 0.0
        assert self._prediction is not None
        for record in records:
            prediction = self._prediction.for_leaf(record.leaf)
            for spine, expected in prediction.port_bytes.items():
                if expected <= 0:
                    continue
                observed = record.port_bytes.get(spine, 0)
                worst = max(worst, abs(observed - expected) / expected)
        return worst
