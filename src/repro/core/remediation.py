"""Operator remediation loop: detect -> localize -> confirm -> disable.

The paper's opening argument (§1) is that faulty components must be
quickly *detected, localized, and disabled* — excluded from routing so
the fabric's resilience can route around them until the next
maintenance window.  This module closes that loop on top of the
monitor:

1. :class:`ConfirmationPolicy` turns raw per-iteration suspicions into
   confirmed faults (a cable must be implicated in ``confirm_after`` of
   the last ``window`` monitored iterations — one noisy iteration never
   takes a link out of service).
2. :class:`RemediationEngine` disables the confirmed cable in the
   control plane (both directions, as a switch OS would), rebuilds the
   load model so temporal symmetry is re-established over the surviving
   links, and keeps monitoring.

Disabling on suspicion is deliberately conservative: when localization
narrows a deficit to two candidate cables (the single-sender ring case,
see :mod:`repro.core.localization`), the engine takes both out of
service — the fabric loses one healthy cable but regains a clean
symmetry baseline, which mirrors operator practice of erring toward
draining hardware.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..topology.graph import down_link, parse_fabric_link, up_link
from .monitor import IterationVerdict


class RemediationError(RuntimeError):
    """Raised on inconsistent remediation configuration."""


@dataclass(frozen=True)
class ConfirmationPolicy:
    """How much evidence is needed before a cable is disabled.

    A cable is confirmed when it is implicated in at least
    ``confirm_after`` of the last ``window`` monitored iterations.
    """

    confirm_after: int = 2
    window: int = 4

    def __post_init__(self) -> None:
        if self.confirm_after < 1:
            raise RemediationError("confirm_after must be at least 1")
        if self.window < self.confirm_after:
            raise RemediationError("window must cover confirm_after iterations")


def cable_of(link: str) -> tuple[int, int]:
    """Normalize a directional link name to its physical cable
    (leaf, spine)."""
    _direction, leaf, spine = parse_fabric_link(link)
    return leaf, spine


def cable_links(cable: tuple[int, int]) -> frozenset[str]:
    """Both directional link names of a physical cable."""
    leaf, spine = cable
    return frozenset({up_link(leaf, spine), down_link(spine, leaf)})


def cable_of3(link: str) -> tuple:
    """Three-level cable normalization: maps a directional link name of
    a pod fabric (``up:/down:`` pod links, ``csup:/csdown:`` core links)
    to its physical cable identity."""
    direction, rest = link.split(":", 1)
    a, b = rest.split("->")
    if direction in ("up", "down"):
        leaf_part, spine_part = (a, b) if direction == "up" else (b, a)
        return ("pod", leaf_part, spine_part)
    if direction in ("csup", "csdown"):
        spine_part, core_part = (a, b) if direction == "csup" else (b, a)
        return ("core", spine_part, core_part)
    raise RemediationError(f"not a three-level link name: {link!r}")


def cable_links3(cable: tuple) -> frozenset[str]:
    """Both directional names of a three-level physical cable."""
    kind, x, y = cable
    if kind == "pod":
        return frozenset({f"up:{x}->{y}", f"down:{y}->{x}"})
    if kind == "core":
        return frozenset({f"csup:{x}->{y}", f"csdown:{y}->{x}"})
    raise RemediationError(f"unknown cable kind {kind!r}")


@dataclass
class RemediationAction:
    """One confirmed fault and the links taken out of service."""

    iteration: int
    cables: frozenset[tuple[int, int]]
    disabled_links: frozenset[str]


@dataclass
class RemediationEngine:
    """Tracks suspicions across iterations and disables confirmed cables.

    The engine is transport-agnostic: callers feed it
    :class:`~repro.core.monitor.IterationVerdict` objects and apply the
    returned actions to whatever holds the routing state (a
    :class:`~repro.topology.graph.ControlPlane`, a
    :class:`~repro.fastsim.model.FabricModel`, or a live
    :class:`~repro.simnet.network.Network`).
    """

    policy: ConfirmationPolicy = field(default_factory=ConfirmationPolicy)
    history: deque = field(default_factory=deque)
    actions: list[RemediationAction] = field(default_factory=list)
    disabled_cables: set = field(default_factory=set)
    #: Cable-identity functions; swap for :func:`cable_of3` /
    #: :func:`cable_links3` when remediating a three-level fabric.
    cable_fn: Callable[[str], tuple] = cable_of
    links_fn: Callable[[tuple], frozenset] = cable_links

    def observe(self, verdict: IterationVerdict) -> RemediationAction | None:
        """Feed one monitored iteration; returns an action if a cable
        crossed the confirmation bar.

        Accepts anything exposing ``iteration``, ``suspected_links()``
        and (optionally) ``skipped`` — both two-level and three-level
        verdicts qualify.
        """
        if getattr(verdict, "skipped", False):
            return None
        implicated = {self.cable_fn(link) for link in verdict.suspected_links()}
        self.history.append(implicated)
        while len(self.history) > self.policy.window:
            self.history.popleft()

        confirmed = set()
        for cable in implicated:
            if cable in self.disabled_cables:
                continue
            count = sum(1 for past in self.history if cable in past)
            if count >= self.policy.confirm_after:
                confirmed.add(cable)
        if not confirmed:
            return None
        self.disabled_cables.update(confirmed)
        links = frozenset(
            link for cable in confirmed for link in self.links_fn(cable)
        )
        action = RemediationAction(
            iteration=verdict.iteration,
            cables=frozenset(confirmed),
            disabled_links=links,
        )
        self.actions.append(action)
        return action

    @property
    def total_disabled_links(self) -> frozenset[str]:
        return frozenset(
            link for action in self.actions for link in action.disabled_links
        )

    def reset_history(self) -> None:
        """Clear the evidence window (e.g. after the model is rebuilt)."""
        self.history.clear()
