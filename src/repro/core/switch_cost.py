"""Data-plane resource model for FlowPulse's switch-side state.

The paper deploys FlowPulse "using programmable switches, which have
become prevalent in training clusters" (§5).  This module quantifies
what that costs on the ASIC, so deployability claims are checkable:

- **counters**: one byte counter per (monitored job, spine ingress
  port) for detection, plus one per (job, port, sending leaf) for
  localization;
- **registers**: current iteration id and baseline/threshold words per
  counter;
- **per-packet work**: one tag match, one counter increment, and a
  bounded-rate window check — well within a single match-action stage.

The localization breakdown dominates: it scales with the number of
leaves sending through each port, which is why the paper measures a
single collective with one non-local sender per leaf (§5.1) — in that
regime, per-sender state collapses to one entry per port.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.graph import ClosSpec

#: Width of one byte counter (48-bit counters padded to 8 B, as on
#: commodity programmable ASICs).
COUNTER_BYTES = 8
#: Baseline + threshold + iteration-id words kept per monitored port.
CONTROL_WORDS_BYTES = 3 * 4
#: A conservative per-stage SRAM budget for one match-action stage of a
#: Tofino-class switch (~1.25 MiB usable per stage).
TOFINO_STAGE_SRAM_BYTES = 1_310_720


@dataclass(frozen=True)
class SwitchCost:
    """Per-leaf-switch data-plane footprint of FlowPulse."""

    jobs: int
    ports: int
    senders_per_port: int
    detection_counters: int
    localization_counters: int
    sram_bytes: int
    per_packet_actions: int

    @property
    def fits_one_stage(self) -> bool:
        """Whether the state fits a single Tofino-class SRAM stage."""
        return self.sram_bytes <= TOFINO_STAGE_SRAM_BYTES

    @property
    def sram_fraction_of_stage(self) -> float:
        return self.sram_bytes / TOFINO_STAGE_SRAM_BYTES


def leaf_switch_cost(
    spec: ClosSpec,
    monitored_jobs: int = 1,
    senders_per_port: int = 1,
) -> SwitchCost:
    """Footprint of FlowPulse on one leaf switch.

    ``senders_per_port`` is 1 for ring collectives (the §5.1 condition);
    general collectives can raise it up to ``n_leaves - 1``.
    """
    if monitored_jobs < 1:
        raise ValueError("need at least one monitored job")
    if not 1 <= senders_per_port <= spec.n_leaves - 1:
        raise ValueError(
            f"senders_per_port must be in [1, {spec.n_leaves - 1}]"
        )
    ports = spec.n_spines
    detection = monitored_jobs * ports
    localization = monitored_jobs * ports * senders_per_port
    sram = (
        (detection + localization) * COUNTER_BYTES
        + detection * CONTROL_WORDS_BYTES
    )
    # Per packet: tag match, detection increment, localization increment.
    return SwitchCost(
        jobs=monitored_jobs,
        ports=ports,
        senders_per_port=senders_per_port,
        detection_counters=detection,
        localization_counters=localization,
        sram_bytes=sram,
        per_packet_actions=3,
    )


def fabric_cost_report(spec: ClosSpec, monitored_jobs: int = 1) -> str:
    """One-paragraph deployability summary for a fabric."""
    ring = leaf_switch_cost(spec, monitored_jobs, senders_per_port=1)
    worst = leaf_switch_cost(
        spec, monitored_jobs, senders_per_port=spec.n_leaves - 1
    )
    return (
        f"FlowPulse on a {spec.n_leaves}x{spec.n_spines} fabric, "
        f"{monitored_jobs} monitored job(s): "
        f"{ring.detection_counters + ring.localization_counters} counters "
        f"({ring.sram_bytes} B SRAM, {ring.sram_fraction_of_stage:.2%} of one "
        f"stage) per leaf for ring collectives; worst-case all-senders "
        f"localization needs {worst.sram_bytes} B "
        f"({worst.sram_fraction_of_stage:.2%} of one stage); "
        f"{ring.per_packet_actions} actions per tagged packet."
    )
