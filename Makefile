PYTHON ?= python
PYTHONPATH := src
PYTEST_ARGS ?=

.PHONY: test lint bench sweep-bench

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q $(PYTEST_ARGS)

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q -p no:cacheprovider

sweep-bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/test_sweep_throughput.py -q -s
