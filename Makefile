PYTHON ?= python
PYTHONPATH := src
PYTEST_ARGS ?=

.PHONY: test lint bench sweep-bench fleet-bench fleet-demo ha-demo report-demo grey-demo

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q $(PYTEST_ARGS)

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q -p no:cacheprovider

sweep-bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/test_sweep_throughput.py -q -s

fleet-bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/test_fleet_throughput.py -q -s

# End-to-end fleet walkthrough: generate a multi-job workload, stream it
# through a sharded service (incident log to /tmp), verify golden parity.
fleet-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet loadgen \
		--jobs 8 --iterations 20 --fault-fraction 0.25 \
		--out /tmp/fleet-demo.fprec
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet serve \
		--input /tmp/fleet-demo.fprec --shards 4 \
		--incidents-out /tmp/fleet-demo-incidents.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet replay \
		--input /tmp/fleet-demo.fprec --shards 2
	@echo "incident log: /tmp/fleet-demo-incidents.jsonl"

# Highly-available fleet walkthrough: start the TCP ingest server with
# a chaos hook that SIGKILLs shard 1 mid-stream, push a recorded
# workload into it over 4 connections, and let journal-replay failover
# prove itself — the server exits 0 only if validation passes with
# zero lost records.
ha-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet loadgen \
		--jobs 8 --iterations 20 --fault-fraction 0.25 \
		--out /tmp/ha-demo.fprec
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet serve \
		--listen 127.0.0.1:19917 --shards 3 \
		--kill-shard 1 --kill-after 200 --idle-exit 2 \
		--incidents-out /tmp/ha-demo-incidents.jsonl & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do \
		$(PYTHON) -c "import socket; socket.create_connection(('127.0.0.1', 19917), 1).close()" \
			2>/dev/null && break; \
		sleep 0.2; \
	done; \
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet stream \
		--connect 127.0.0.1:19917 --input /tmp/ha-demo.fprec \
		--connections 4 --wire-version 2; \
	wait $$SERVE_PID
	@echo "incident log: /tmp/ha-demo-incidents.jsonl"

# Gray-failure study walkthrough: sweep scenario kind x spray policy x
# congestion level into an FP/detection-latency CSV (with the event
# stream captured for forensics), run the disable-vs-reroute
# remediation face-off, and build the incident report from the study's
# own events.
grey-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro greylab \
		--kinds congested_healthy gray_conditional \
		--seeds-per-cell 2 --out /tmp/grey-demo.csv \
		--events-out /tmp/grey-demo-events.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro greylab \
		--kinds gray_conditional --sprays random --levels none \
		--seeds-per-cell 1 --compare-remediations --compare-seeds 10 \
		--out /tmp/grey-demo-remediation.csv
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report \
		/tmp/grey-demo-events.jsonl --out /tmp/grey-demo-report --no-html
	@echo "study matrix: /tmp/grey-demo.csv"
	@echo "fact tables:  /tmp/grey-demo-report/"

# Post-incident forensics walkthrough: capture a chaos batch's event
# stream and a fleet incident log, then build the CSV fact tables and
# the self-contained HTML incident report from both.
report-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro chaos \
		--scenarios 20 --events-out /tmp/report-demo-events.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet loadgen \
		--jobs 4 --iterations 20 --fault-fraction 0.5 \
		--out /tmp/report-demo.fprec
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro fleet serve \
		--input /tmp/report-demo.fprec --shards 2 \
		--incidents-out /tmp/report-demo-incidents.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro report \
		/tmp/report-demo-events.jsonl /tmp/report-demo-incidents.jsonl \
		/tmp/report-demo.fprec --out /tmp/report-demo
	@echo "open /tmp/report-demo/report.html"
