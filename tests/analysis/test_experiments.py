"""Tests for the trial runner."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import (
    ExperimentConfig,
    ExperimentError,
    build_trial,
    make_predictor,
    run_batch,
    run_trial,
    sweep,
)
from repro.topology import parse_fabric_link
from repro.units import MIB


# Small-but-clean config: 8 leaves x 4 spines.  The collective is large
# enough that spray noise (~sqrt(s/n)) sits near 0.25 %, well under the
# 1 % threshold even across 32 ports x 3 iterations of negative trials.
FAST = dict(
    n_leaves=8,
    n_spines=4,
    collective_bytes=512 * MIB,
    mtu=1024,
    n_iterations=3,
)


def cfg(**kwargs):
    params = dict(FAST)
    params.update(kwargs)
    return ExperimentConfig(**params)


def test_config_validation():
    with pytest.raises(ExperimentError):
        cfg(fault_direction="sideways")
    with pytest.raises(ExperimentError):
        cfg(predictor="oracle")
    with pytest.raises(ExperimentError):
        cfg(drop_rate=0.0)
    with pytest.raises(ExperimentError):
        cfg(n_iterations=0)
    with pytest.raises(ExperimentError):
        cfg(predictor="learned", n_iterations=3, warmup_iterations=3)


def test_build_trial_places_fault_on_fabric_link():
    setup = build_trial(cfg(), base_seed=1, trial=0)
    direction, leaf, spine = parse_fabric_link(setup.fault_link)
    assert direction == "down"
    assert 0 <= leaf < 8 and 0 <= spine < 4


def test_build_trial_up_direction():
    setup = build_trial(cfg(fault_direction="up"), base_seed=1, trial=0)
    assert setup.fault_link.startswith("up:")


def test_build_trial_protects_fault_link_from_preexisting():
    config = cfg(n_preexisting=4)
    for trial in range(5):
        setup = build_trial(config, base_seed=2, trial=trial)
        assert setup.fault_link not in setup.model.known_disabled


def test_trials_deterministic():
    a = run_trial(cfg(), injected=True, base_seed=3, trial=1)
    b = run_trial(cfg(), injected=True, base_seed=3, trial=1)
    assert a == b


def test_trials_vary_across_indices():
    a = run_trial(cfg(), injected=False, base_seed=3, trial=1)
    b = run_trial(cfg(), injected=False, base_seed=3, trial=2)
    assert a.score != b.score


def test_positive_trial_detected_and_localized():
    outcome = run_trial(cfg(drop_rate=0.05), injected=True, base_seed=4, trial=0)
    assert outcome.triggered
    assert outcome.score > 0.01
    assert outcome.localized_correctly
    assert outcome.first_detection_iteration == 0


def test_negative_trial_quiet():
    outcome = run_trial(cfg(), injected=False, base_seed=4, trial=0)
    assert not outcome.triggered
    assert not outcome.localized_correctly


def test_up_direction_fault_detected():
    outcome = run_trial(
        cfg(drop_rate=0.05, fault_direction="up"), injected=True, base_seed=5, trial=0
    )
    assert outcome.triggered
    assert outcome.localized_correctly


def test_batch_confusion_perfect_at_high_drop():
    batch = run_batch(cfg(drop_rate=0.05), n_trials=5, base_seed=6)
    confusion = batch.confusion()
    assert confusion.perfect
    assert batch.localization_rate == 1.0


def test_batch_scores_exposed():
    batch = run_batch(cfg(drop_rate=0.05), n_trials=3, base_seed=7)
    assert len(batch.positive_scores) == 3
    assert len(batch.negative_scores) == 3
    assert min(batch.positive_scores) > max(batch.negative_scores)


def test_batch_validation():
    with pytest.raises(ExperimentError):
        run_batch(cfg(), n_trials=0)


def test_sweep_runs_each_value():
    results = sweep(cfg(), "drop_rate", [0.03, 0.06], n_trials=2, base_seed=8)
    assert set(results) == {0.03, 0.06}
    for batch in results.values():
        assert len(batch.positives) == 2


def test_simulation_predictor_trial():
    outcome = run_trial(
        cfg(predictor="simulation", drop_rate=0.05), injected=True, base_seed=9, trial=0
    )
    assert outcome.triggered


def test_learned_predictor_trial_detects_mid_run_fault():
    config = cfg(
        predictor="learned",
        warmup_iterations=2,
        n_iterations=6,
        fault_start_iteration=4,
        drop_rate=0.05,
    )
    outcome = run_trial(config, injected=True, base_seed=10, trial=0)
    assert outcome.triggered
    assert outcome.first_detection_iteration >= 4


def test_preexisting_faults_do_not_break_detection():
    config = cfg(n_preexisting=3, drop_rate=0.05)
    pos = run_trial(config, injected=True, base_seed=11, trial=0)
    neg = run_trial(config, injected=False, base_seed=11, trial=0)
    assert pos.triggered
    assert not neg.triggered


def test_config_is_frozen():
    config = cfg()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.drop_rate = 0.5
