"""Tests for report formatting."""

from __future__ import annotations

import pytest

from repro.analysis import banner, format_percent, format_series, format_table


def test_format_percent():
    assert format_percent(0.015) == "1.50%"
    assert format_percent(1.0, digits=0) == "100%"


def test_table_alignment():
    table = format_table(
        ["name", "value"], [["alpha", 1], ["b", 123456]], title="T"
    )
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # Columns align: 'alpha' and 'b' rows have the value at same offset.
    assert lines[3].index("1") == lines[4].index("123456")


def test_table_float_formatting():
    table = format_table(["x"], [[0.123456789]])
    assert "0.1235" in table


def test_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_series():
    text = format_series("fig", [1, 2], [0.1, 0.2], x_label="drop", y_label="fpr")
    assert "fig" in text
    assert "drop" in text and "fpr" in text
    assert "0.1" in text and "0.2" in text


def test_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series("fig", [1], [1, 2])


def test_banner_contains_text():
    assert "hello" in banner("hello")
