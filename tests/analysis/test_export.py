"""Tests for results export."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import (
    ExportError,
    ResultsWriter,
    maybe_export,
    results_writer,
)


def test_write_and_read_csv(tmp_path):
    writer = ResultsWriter(tmp_path / "results")
    path = writer.write_csv("fig5a", ["drop", "fpr"], [[0.015, 0.0], [0.02, 0.0]])
    assert path.exists()
    headers, rows = writer.read_csv("fig5a")
    assert headers == ["drop", "fpr"]
    assert rows == [["0.015", "0.0"], ["0.02", "0.0"]]


def test_ragged_rows_rejected(tmp_path):
    writer = ResultsWriter(tmp_path)
    with pytest.raises(ExportError):
        writer.write_csv("bad", ["a", "b"], [[1]])


def test_invalid_names_rejected(tmp_path):
    writer = ResultsWriter(tmp_path)
    for bad in ("", "../escape", ".hidden"):
        with pytest.raises(ExportError):
            writer.write_csv(bad, ["a"], [[1]])


def test_write_json(tmp_path):
    writer = ResultsWriter(tmp_path)
    path = writer.write_json("meta", {"threshold": 0.01, "trials": 12})
    assert json.loads(path.read_text()) == {"threshold": 0.01, "trials": 12}


def test_read_missing_csv(tmp_path):
    writer = ResultsWriter(tmp_path)
    with pytest.raises(FileNotFoundError):
        writer.read_csv("nothing")


def test_directory_created(tmp_path):
    target = tmp_path / "a" / "b"
    ResultsWriter(target)
    assert target.is_dir()


def test_results_writer_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
    assert results_writer() is None
    assert maybe_export("x", ["a"], [[1]]) is None


def test_results_writer_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
    writer = results_writer()
    assert writer is not None
    path = maybe_export("table", ["a"], [[1]])
    assert path is not None and path.exists()
    assert path.parent == tmp_path / "out"
