"""Multi-job monitoring (paper §7 "Parallel Jobs").

Each job is measured through its own tagged collective and its own
demand-derived prediction; a fault on links used by one job is caught
by that job's monitor and invisible to the other's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import ring_demand
from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
from repro.fastsim import FabricModel, simulate_iteration
from repro.simnet import FlowTag
from repro.topology import ClosSpec, down_link
from repro.units import MIB
from repro.workloads import place_jobs

SPEC = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)


def monitors_and_demands():
    jobs = place_jobs(SPEC, [4, 4])
    demands = {
        job.job_id: ring_demand(job.ring(), 512 * MIB) for job in jobs
    }
    monitors = {
        job_id: FlowPulseMonitor(
            AnalyticalPredictor(SPEC, demand), DetectionConfig(threshold=0.01)
        )
        for job_id, demand in demands.items()
    }
    return jobs, demands, monitors


def run_job_iteration(model, demand, job_id, iteration, rng):
    return simulate_iteration(model, demand, rng, tag=FlowTag(job_id, iteration))


def test_jobs_have_disjoint_hosts():
    jobs, demands, _ = monitors_and_demands()
    assert set(jobs[0].hosts).isdisjoint(jobs[1].hosts)
    # Job 1 spans leaves 0-3, job 2 leaves 4-7.
    assert jobs[0].leaves(SPEC) == frozenset(range(4))
    assert jobs[1].leaves(SPEC) == frozenset(range(4, 8))


def test_fault_on_one_jobs_leaf_seen_only_by_that_job():
    jobs, demands, monitors = monitors_and_demands()
    fault = down_link(2, 1)  # spine2 -> leaf1: only job 1's territory
    model = FabricModel(SPEC, silent={fault: 0.05}, mtu=1024)
    rng = np.random.Generator(np.random.PCG64(51))
    verdicts = {}
    for job in jobs:
        records = run_job_iteration(model, demands[job.job_id], job.job_id, 0, rng)
        verdicts[job.job_id] = monitors[job.job_id].process_iteration(records)
    assert verdicts[1].triggered
    assert fault in verdicts[1].suspected_links()
    assert not verdicts[2].triggered


def test_spine_level_fault_can_hit_both_jobs():
    """An upstream fault on a shared spine's links into *each* job's
    leaves is caught by each respective job."""
    jobs, demands, monitors = monitors_and_demands()
    model = FabricModel(
        SPEC,
        silent={down_link(0, 1): 0.05, down_link(0, 5): 0.05},
        mtu=1024,
    )
    rng = np.random.Generator(np.random.PCG64(52))
    triggered = {}
    for job in jobs:
        records = run_job_iteration(model, demands[job.job_id], job.job_id, 0, rng)
        triggered[job.job_id] = monitors[job.job_id].process_iteration(records).triggered
    assert triggered[1] and triggered[2]


def test_healthy_jobs_both_quiet():
    jobs, demands, monitors = monitors_and_demands()
    model = FabricModel(SPEC, mtu=1024)
    rng = np.random.Generator(np.random.PCG64(53))
    for job in jobs:
        records = run_job_iteration(model, demands[job.job_id], job.job_id, 0, rng)
        assert not monitors[job.job_id].process_iteration(records).triggered


def test_job_demand_is_single_sender_per_leaf():
    """Whole-leaf contiguous placement preserves the §4 jitter-resilience
    condition inside each job."""
    jobs, demands, _ = monitors_and_demands()
    for job in jobs:
        assert demands[job.job_id].is_single_sender_per_leaf(SPEC)
