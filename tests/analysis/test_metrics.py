"""Tests for classification metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ConfusionCounts, MetricsError, confusion_from_scores


def test_rates_basic():
    c = ConfusionCounts(tp=8, fn=2, fp=1, tn=9)
    assert c.fpr == 0.1
    assert c.fnr == 0.2
    assert c.tpr == pytest.approx(0.8)
    assert c.recall == pytest.approx(0.8)
    assert c.precision == pytest.approx(8 / 9)
    assert c.accuracy == pytest.approx(17 / 20)


def test_perfect_flag():
    assert ConfusionCounts(tp=5, tn=5).perfect
    assert not ConfusionCounts(tp=5, tn=5, fp=1).perfect


def test_empty_classes_defined():
    c = ConfusionCounts()
    assert c.fpr == 0.0
    assert c.fnr == 0.0
    assert c.precision == 1.0
    assert c.accuracy == 1.0


def test_f1_zero_when_nothing_found():
    c = ConfusionCounts(fn=10, tn=10)
    assert c.f1 == 0.0


def test_f1_one_when_perfect():
    c = ConfusionCounts(tp=10, tn=10)
    assert c.f1 == 1.0


def test_addition():
    a = ConfusionCounts(tp=1, fp=2, tn=3, fn=4)
    b = ConfusionCounts(tp=10, fp=20, tn=30, fn=40)
    c = a + b
    assert (c.tp, c.fp, c.tn, c.fn) == (11, 22, 33, 44)


def test_negative_counts_rejected():
    with pytest.raises(MetricsError):
        ConfusionCounts(tp=-1)


def test_confusion_from_scores():
    c = confusion_from_scores(
        positive_scores=[0.02, 0.005], negative_scores=[0.004, 0.02], threshold=0.01
    )
    assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)


def test_confusion_threshold_is_strict():
    c = confusion_from_scores([0.01], [0.01], threshold=0.01)
    assert c.tp == 0 and c.tn == 1


def test_confusion_invalid_threshold():
    with pytest.raises(MetricsError):
        confusion_from_scores([1.0], [0.0], threshold=0.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0, 1), min_size=1, max_size=40),
    st.lists(st.floats(0, 1), min_size=1, max_size=40),
    st.floats(0.01, 0.99),
)
def test_property_counts_partition_trials(pos, neg, threshold):
    c = confusion_from_scores(pos, neg, threshold)
    assert c.tp + c.fn == len(pos) == c.positives
    assert c.fp + c.tn == len(neg) == c.negatives
    assert 0.0 <= c.fpr <= 1.0
    assert 0.0 <= c.fnr <= 1.0
