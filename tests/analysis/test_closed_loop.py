"""Tests for the closed-loop remediation runs."""

from __future__ import annotations

import pytest

from repro.analysis import run_closed_loop
from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import ConfirmationPolicy
from repro.fastsim import FabricModel
from repro.topology import ClosSpec, down_link, up_link
from repro.units import MIB

SPEC = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 512 * MIB)
MODEL = FabricModel(SPEC, mtu=1024)


def test_healthy_run_takes_no_action():
    result = run_closed_loop(MODEL, DEMAND, {}, n_iterations=5, seed=1)
    assert result.actions == []
    assert result.detection_iteration is None
    assert not result.recovered


def test_fault_detected_disabled_and_recovered():
    fault_link = down_link(1, 3)
    result = run_closed_loop(
        MODEL,
        DEMAND,
        {fault_link: 0.05},
        n_iterations=10,
        fault_start_iteration=2,
        policy=ConfirmationPolicy(confirm_after=2, window=4),
        seed=2,
    )
    assert result.detection_iteration == 2
    # Confirmation needs a second implicated iteration.
    assert result.remediation_iteration == 3
    # The faulty cable is among the disabled ones.
    disabled = result.actions[0].disabled_links
    assert fault_link in disabled
    # Post-remediation iterations are quiet: symmetry restored over the
    # surviving spines.
    assert result.recovered


def test_disabled_links_removed_from_routing():
    fault_link = down_link(0, 5)
    result = run_closed_loop(
        MODEL,
        DEMAND,
        {fault_link: 0.10},
        n_iterations=8,
        policy=ConfirmationPolicy(confirm_after=1, window=1),
        seed=3,
    )
    assert result.actions
    final = result.steps[-1]
    assert fault_link in final.disabled_so_far


def test_conservative_disable_includes_candidate_cable():
    """Single-sender rings cannot disambiguate local vs remote; the
    engine drains both candidate cables (at most one healthy cable
    sacrificed for a clean baseline)."""
    fault_link = up_link(2, 1)
    result = run_closed_loop(
        MODEL,
        DEMAND,
        {fault_link: 0.10},
        n_iterations=8,
        policy=ConfirmationPolicy(confirm_after=1, window=1),
        seed=4,
    )
    assert result.actions
    disabled = result.actions[0].disabled_links
    assert fault_link in disabled
    assert len(disabled) in (2, 4)  # one or two cables, both directions
    assert result.recovered


def test_immediate_fault_with_aggressive_policy():
    result = run_closed_loop(
        MODEL,
        DEMAND,
        {down_link(3, 6): 0.08},
        n_iterations=6,
        policy=ConfirmationPolicy(confirm_after=1, window=1),
        seed=5,
    )
    assert result.remediation_iteration == 0
    assert result.recovered


def test_steps_cover_every_iteration():
    result = run_closed_loop(MODEL, DEMAND, {}, n_iterations=4, seed=6)
    assert [s.iteration for s in result.steps] == [0, 1, 2, 3]
