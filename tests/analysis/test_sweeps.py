"""Sweep engine: determinism contract, serial parity, and stats."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentConfig,
    SweepError,
    SweepRunner,
    SweepStats,
    SweepTask,
)
from repro.analysis.experiments import ExperimentError, run_batch, run_trial, sweep
from repro.units import MIB

CONFIG = ExperimentConfig(
    n_leaves=8,
    n_spines=4,
    collective_bytes=64 * MIB,
    mtu=1024,
    drop_rate=0.02,
    n_iterations=4,
)


def small_tasks(n=3, base_seed=7):
    return [
        SweepTask(config=CONFIG, injected=injected, base_seed=base_seed, trial=t)
        for injected in (True, False)
        for t in range(n)
    ]


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------
def test_jobs4_bit_identical_to_jobs1():
    """The acceptance criterion: a pool of 4 workers produces exactly
    the per-trial outcomes (verdicts, scores, suspects) of the inline
    path, for a fixed base_seed."""
    tasks = small_tasks(n=3, base_seed=123)
    serial = SweepRunner(jobs=1).run_tasks(tasks)
    pooled = SweepRunner(jobs=4).run_tasks(tasks)
    assert pooled == serial
    assert [o.score for o in pooled] == [o.score for o in serial]


def test_worker_count_independence():
    tasks = small_tasks(n=2, base_seed=5)
    by_jobs = {j: SweepRunner(jobs=j).run_tasks(tasks) for j in (1, 2, 3)}
    assert by_jobs[1] == by_jobs[2] == by_jobs[3]


def test_chunksize_does_not_change_results():
    tasks = small_tasks(n=2, base_seed=9)
    a = SweepRunner(jobs=2, chunksize=1).run_tasks(tasks)
    b = SweepRunner(jobs=2, chunksize=4).run_tasks(tasks)
    assert a == b


def test_baseline_cache_is_correctness_neutral():
    tasks = small_tasks(n=2, base_seed=11)
    cached = SweepRunner(jobs=1, cache_baselines=True).run_tasks(tasks)
    uncached = SweepRunner(jobs=1, cache_baselines=False).run_tasks(tasks)
    assert cached == uncached


# ----------------------------------------------------------------------
# Parity with the serial experiments API
# ----------------------------------------------------------------------
def test_run_tasks_matches_run_trial():
    tasks = small_tasks(n=2, base_seed=3)
    outcomes = SweepRunner(jobs=1).run_tasks(tasks)
    for task, outcome in zip(tasks, outcomes):
        assert outcome == run_trial(
            task.config,
            injected=task.injected,
            base_seed=task.base_seed,
            trial=task.trial,
        )


def test_run_batch_matches_serial_run_batch():
    fast = SweepRunner(jobs=1).run_batch(CONFIG, n_trials=3, base_seed=42)
    serial = run_batch(CONFIG, n_trials=3, base_seed=42)
    assert fast.positives == serial.positives
    assert fast.negatives == serial.negatives
    assert fast.confusion() == serial.confusion()


def test_sweep_matches_serial_sweep():
    values = [0.01, 0.03]
    fast = SweepRunner(jobs=1).sweep(
        CONFIG, "drop_rate", values, n_trials=2, base_seed=17
    )
    serial = sweep(CONFIG, "drop_rate", values, n_trials=2, base_seed=17)
    assert list(fast) == values
    for value in values:
        assert fast[value].positives == serial[value].positives
        assert fast[value].negatives == serial[value].negatives
        assert fast[value].config.drop_rate == value


# ----------------------------------------------------------------------
# Stats and validation
# ----------------------------------------------------------------------
def test_stats_recorded_per_call():
    runner = SweepRunner(jobs=1)
    assert runner.last_stats is None
    runner.run_tasks(small_tasks(n=1))
    stats = runner.last_stats
    assert isinstance(stats, SweepStats)
    assert stats.n_trials == 2
    assert stats.jobs == 1
    assert stats.elapsed_s > 0
    assert stats.trials_per_sec > 0


def test_empty_task_list_is_a_noop():
    runner = SweepRunner(jobs=1)
    assert runner.run_tasks([]) == []
    assert runner.last_stats is None


def test_jobs_zero_means_cpu_count():
    assert SweepRunner(jobs=0).jobs >= 1


def test_negative_jobs_rejected():
    with pytest.raises(SweepError):
        SweepRunner(jobs=-1)


def test_sweep_rejects_empty_values():
    with pytest.raises(SweepError):
        SweepRunner().sweep(CONFIG, "drop_rate", [], n_trials=1)


def test_run_batch_rejects_zero_trials():
    with pytest.raises(ExperimentError):
        SweepRunner().run_batch(CONFIG, n_trials=0)


# ----------------------------------------------------------------------
# Instrumentation (telemetry + progress) stays observation-only
# ----------------------------------------------------------------------
def test_instrumented_serial_run_matches_plain():
    from repro.telemetry import TelemetrySession

    tasks = small_tasks(n=2, base_seed=21)
    plain = SweepRunner(jobs=1).run_tasks(tasks)
    session = TelemetrySession()
    instrumented = SweepRunner(jobs=1, telemetry=session).run_tasks(tasks)
    assert instrumented == plain


def test_instrumented_pool_run_matches_plain():
    from repro.telemetry import TelemetrySession

    tasks = small_tasks(n=2, base_seed=22)
    plain = SweepRunner(jobs=1).run_tasks(tasks)
    session = TelemetrySession()
    instrumented = SweepRunner(jobs=2, telemetry=session).run_tasks(tasks)
    assert instrumented == plain


def test_telemetry_emits_per_trial_and_run_events():
    from repro.telemetry import TelemetrySession

    tasks = small_tasks(n=2, base_seed=23)
    session = TelemetrySession()
    runner = SweepRunner(jobs=2, telemetry=session)
    outcomes = runner.run_tasks(tasks)
    trial_events = session.events.of_type("sweep.trial")
    assert len(trial_events) == len(tasks)
    assert [e["index"] for e in trial_events] == list(range(len(tasks)))
    for event, task, outcome in zip(trial_events, tasks, outcomes):
        assert event["injected"] == task.injected
        assert event["score"] == outcome.score
        assert event["wall_s"] > 0
    (run_event,) = session.events.of_type("sweep.run")
    assert run_event["n_trials"] == len(tasks)
    assert run_event["jobs"] == 2
    assert 0 < run_event["worker_utilization"] <= 1.0
    assert session.counter("sweep.trials").value == len(tasks)
    assert session.histogram("sweep.trial_wall_s").count == len(tasks)


def test_progress_callback_sees_every_trial():
    calls = []
    tasks = small_tasks(n=2, base_seed=24)
    runner = SweepRunner(jobs=1, progress=lambda d, t, e: calls.append((d, t, e)))
    plain = SweepRunner(jobs=1).run_tasks(tasks)
    assert runner.run_tasks(tasks) == plain
    assert [d for d, _t, _e in calls] == list(range(1, len(tasks) + 1))
    assert all(t == len(tasks) for _d, t, _e in calls)
    elapsed = [e for _d, _t, e in calls]
    assert elapsed == sorted(elapsed)


def test_stats_record_utilization_when_instrumented():
    from repro.telemetry import TelemetrySession

    runner = SweepRunner(jobs=1, telemetry=TelemetrySession())
    runner.run_tasks(small_tasks(n=1))
    stats = runner.last_stats
    assert stats.busy_s > 0
    assert 0 < stats.utilization <= 1.0
    # Uninstrumented runs don't pay for timing: busy_s stays zero.
    plain = SweepRunner(jobs=1)
    plain.run_tasks(small_tasks(n=1))
    assert plain.last_stats.busy_s == 0.0
    assert plain.last_stats.utilization == 0.0
