"""Tests for incident reports."""

from __future__ import annotations

import pytest

from repro.analysis.report import CableEvidence, incident_report, rank_cables
from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, down_link
from repro.units import MIB

SPEC = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 512 * MIB)


def monitored(silent, seed=0, threshold=0.01, n=4):
    model = FabricModel(SPEC, silent=silent, mtu=1024)
    records = run_iterations(model, DEMAND, n, seed=seed)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, DEMAND), DetectionConfig(threshold=threshold)
    )
    return monitor.process_run(records)


def test_healthy_report_is_calm():
    verdict = monitored({}, seed=91)
    text = incident_report(verdict, threshold=0.01)
    assert "no fault detected" in text
    assert "INCIDENT" not in text
    assert "monitored iterations: 4" in text


def test_incident_report_names_the_cable():
    verdict = monitored({down_link(2, 5): 0.05}, seed=92)
    text = incident_report(verdict, threshold=0.01)
    assert "INCIDENT" in text
    assert "L5<->S2" in text
    assert "first alarm at iteration 0" in text
    assert "recommended action: drain cable" in text
    assert "down:S2->L5" in text


def test_rank_cables_orders_by_evidence():
    verdict = monitored(
        {down_link(2, 5): 0.08, down_link(0, 1): 0.02}, seed=93, n=5
    )
    ranked = rank_cables(verdict)
    assert ranked
    # The strong fault accumulates at least as much evidence as the
    # marginal one and ranks first.
    top = ranked[0]
    assert top.cable == (5, 2)
    assert top.implicated_iterations == 5
    assert top.worst_deviation < -0.05


def test_evidence_links_cover_both_directions():
    evidence = CableEvidence(
        cable=(3, 1),
        implicated_iterations=2,
        observing_leaves=frozenset({3}),
        worst_deviation=-0.1,
    )
    assert evidence.links == frozenset({"up:L3->S1", "down:S1->L3"})


def test_total_blackhole_reported_as_total():
    verdict = monitored({down_link(1, 4): 1.0}, seed=94, threshold=0.05)
    text = incident_report(verdict, threshold=0.05)
    assert "total" in text
