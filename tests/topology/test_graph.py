"""Tests for Clos specs, link naming, and the control plane."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import (
    ClosSpec,
    ControlPlane,
    TopologyError,
    down_link,
    parse_fabric_link,
    up_link,
)


def test_link_names_roundtrip():
    assert parse_fabric_link(up_link(3, 7)) == ("up", 3, 7)
    assert parse_fabric_link(down_link(7, 3)) == ("down", 3, 7)


def test_parse_rejects_garbage():
    for bad in ("", "up:L1", "side:L1->S2", "up:S1->L2x", "hostup:H3"):
        with pytest.raises(TopologyError):
            parse_fabric_link(bad)


def test_spec_defaults_match_paper():
    spec = ClosSpec()
    assert spec.n_leaves == 32
    assert spec.n_spines == 16
    assert spec.hosts_per_leaf == 1
    assert spec.non_blocking


def test_spec_validation():
    with pytest.raises(TopologyError):
        ClosSpec(n_leaves=1)
    with pytest.raises(TopologyError):
        ClosSpec(n_spines=0)
    with pytest.raises(TopologyError):
        ClosSpec(hosts_per_leaf=0)
    with pytest.raises(TopologyError):
        ClosSpec(link_rate_bps=0)
    with pytest.raises(TopologyError):
        ClosSpec(prop_delay_ns=-1)


def test_host_leaf_mapping():
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=3)
    assert spec.n_hosts == 12
    assert spec.leaf_of_host(0) == 0
    assert spec.leaf_of_host(2) == 0
    assert spec.leaf_of_host(3) == 1
    assert spec.leaf_of_host(11) == 3
    assert list(spec.hosts_of_leaf(1)) == [3, 4, 5]


def test_host_out_of_range():
    spec = ClosSpec(n_leaves=2, n_spines=2)
    with pytest.raises(TopologyError):
        spec.leaf_of_host(2)
    with pytest.raises(TopologyError):
        spec.hosts_of_leaf(2)


def test_non_blocking_condition():
    assert ClosSpec(n_leaves=4, n_spines=4, hosts_per_leaf=4).non_blocking
    assert not ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=4).non_blocking


def test_fabric_links_enumeration():
    spec = ClosSpec(n_leaves=2, n_spines=2)
    links = set(spec.fabric_links())
    assert len(links) == spec.n_fabric_links == 8
    assert up_link(0, 0) in links
    assert down_link(1, 1) in links


def test_control_plane_valid_spines_all_healthy():
    spec = ClosSpec(n_leaves=4, n_spines=3)
    plane = ControlPlane(spec)
    assert plane.valid_spines(0, 1) == [0, 1, 2]


def test_control_plane_excludes_up_fault_for_source_only():
    spec = ClosSpec(n_leaves=4, n_spines=3)
    plane = ControlPlane(spec, known_disabled=frozenset({up_link(0, 1)}))
    assert plane.valid_spines(0, 2) == [0, 2]
    assert plane.valid_spines(1, 2) == [0, 1, 2]  # other sources unaffected


def test_control_plane_excludes_down_fault_for_destination_only():
    spec = ClosSpec(n_leaves=4, n_spines=3)
    plane = ControlPlane(spec, known_disabled=frozenset({down_link(2, 3)}))
    assert plane.valid_spines(0, 3) == [0, 1]
    assert plane.valid_spines(0, 1) == [0, 1, 2]


def test_control_plane_partition_raises():
    spec = ClosSpec(n_leaves=2, n_spines=1)
    plane = ControlPlane(spec, known_disabled=frozenset({up_link(0, 0)}))
    with pytest.raises(TopologyError):
        plane.valid_spines(0, 1)
    assert not plane.reachable(0, 1)
    assert plane.reachable(1, 0)


def test_disable_enable_cycle():
    spec = ClosSpec(n_leaves=2, n_spines=2)
    plane = ControlPlane(spec)
    plane.disable(up_link(0, 0))
    assert not plane.up_ok(0, 0)
    plane.enable(up_link(0, 0))
    assert plane.up_ok(0, 0)


def test_disable_validates_names():
    plane = ControlPlane(ClosSpec(n_leaves=2, n_spines=2))
    with pytest.raises(TopologyError):
        plane.disable("bogus-link")


def test_control_plane_rejects_bad_initial_names():
    with pytest.raises(TopologyError):
        ControlPlane(ClosSpec(n_leaves=2, n_spines=2), known_disabled=frozenset({"x"}))


def test_fully_connected():
    spec = ClosSpec(n_leaves=3, n_spines=2)
    assert ControlPlane(spec).fully_connected()
    broken = ControlPlane(
        spec, known_disabled=frozenset({up_link(0, 0), up_link(0, 1)})
    )
    assert not broken.fully_connected()


@given(st.integers(0, 63), st.integers(0, 63))
def test_property_link_name_roundtrip(leaf, spine):
    assert parse_fabric_link(up_link(leaf, spine)) == ("up", leaf, spine)
    assert parse_fabric_link(down_link(spine, leaf)) == ("down", leaf, spine)


@given(
    st.integers(2, 16),  # leaves
    st.integers(1, 8),  # spines
    st.integers(1, 4),  # hosts per leaf
)
def test_property_every_host_maps_to_a_valid_leaf(n_leaves, n_spines, hosts_per_leaf):
    spec = ClosSpec(n_leaves=n_leaves, n_spines=n_spines, hosts_per_leaf=hosts_per_leaf)
    for host in range(spec.n_hosts):
        leaf = spec.leaf_of_host(host)
        assert host in spec.hosts_of_leaf(leaf)


def test_spray_exclusion_narrows_spraying_but_not_forwarding():
    spec = ClosSpec(n_leaves=4, n_spines=3)
    plane = ControlPlane(spec)
    plane.exclude_from_spray(up_link(0, 1))
    # New traffic from leaf 0 avoids spine 1...
    assert plane.valid_spines(0, 3) == [0, 2]
    # ...but in-flight forwarding still works: the link is up.
    assert plane.up_ok(0, 1)
    assert plane.down_ok(1, 0)
    # Other leaves are unaffected.
    assert plane.valid_spines(2, 3) == [0, 1, 2]


def test_readmit_to_spray_restores_candidates():
    spec = ClosSpec(n_leaves=2, n_spines=3)
    plane = ControlPlane(spec)
    plane.exclude_from_spray(up_link(0, 0), down_link(1, 1))
    assert plane.valid_spines(0, 1) == [2]
    plane.readmit_to_spray(up_link(0, 0), down_link(1, 1))
    assert plane.valid_spines(0, 1) == [0, 1, 2]
    assert plane.spray_excluded == frozenset()


def test_routing_excluded_unions_disabled_and_spray_excluded():
    spec = ClosSpec(n_leaves=2, n_spines=3)
    plane = ControlPlane(spec, known_disabled=frozenset({up_link(0, 0)}))
    plane.exclude_from_spray(up_link(0, 1))
    assert plane.routing_excluded == frozenset({up_link(0, 0), up_link(0, 1)})
    # Disabled links stay excluded even if "readmitted" to spraying.
    plane.readmit_to_spray(up_link(0, 0))
    assert up_link(0, 0) in plane.routing_excluded


def test_exclude_from_spray_validates_names():
    plane = ControlPlane(ClosSpec(n_leaves=2, n_spines=2))
    with pytest.raises(TopologyError):
        plane.exclude_from_spray("bogus-link")


def test_spray_exclusion_partition_raises():
    spec = ClosSpec(n_leaves=2, n_spines=1)
    plane = ControlPlane(spec)
    plane.exclude_from_spray(up_link(0, 0))
    with pytest.raises(TopologyError):
        plane.valid_spines(0, 1)
