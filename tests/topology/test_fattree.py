"""Tests for fat-tree constructors and pre-existing fault placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    ClosSpec,
    ControlPlane,
    TopologyError,
    down_link,
    full_fat_tree,
    paper_default_spec,
    radix_spec,
    random_preexisting_faults,
    up_link,
)


def test_paper_default_matches_evaluation_setup():
    spec = paper_default_spec()
    assert (spec.n_leaves, spec.n_spines, spec.hosts_per_leaf) == (32, 16, 1)


def test_paper_default_overrides():
    spec = paper_default_spec(n_leaves=8)
    assert spec.n_leaves == 8
    assert spec.n_spines == 16


def test_radix_spec_scaling():
    spec = radix_spec(16)
    assert spec.n_spines == 8
    assert spec.n_leaves == 16
    assert spec.hosts_per_leaf == 1


def test_radix_spec_rejects_odd_or_tiny():
    with pytest.raises(TopologyError):
        radix_spec(7)
    with pytest.raises(TopologyError):
        radix_spec(0)


def test_full_fat_tree_is_non_blocking():
    spec = full_fat_tree(8)
    assert (spec.n_leaves, spec.n_spines, spec.hosts_per_leaf) == (8, 4, 4)
    assert spec.non_blocking


def test_random_faults_disable_both_directions():
    spec = ClosSpec(n_leaves=8, n_spines=4)
    rng = np.random.Generator(np.random.PCG64(0))
    disabled = random_preexisting_faults(spec, 3, rng)
    assert len(disabled) == 6  # 3 cables x 2 directions
    for name in disabled:
        direction, leaf, spine = __import__(
            "repro.topology.graph", fromlist=["parse_fabric_link"]
        ).parse_fabric_link(name)
        partner = up_link(leaf, spine) if direction == "down" else down_link(spine, leaf)
        assert partner in disabled


def test_random_faults_keep_fabric_connected():
    spec = ClosSpec(n_leaves=8, n_spines=4)
    rng = np.random.Generator(np.random.PCG64(1))
    disabled = random_preexisting_faults(spec, 6, rng)
    plane = ControlPlane(spec, known_disabled=disabled)
    assert plane.fully_connected()


def test_random_faults_respect_protected_links():
    spec = ClosSpec(n_leaves=4, n_spines=2)
    rng = np.random.Generator(np.random.PCG64(2))
    protect = frozenset({up_link(0, 0), down_link(0, 0)})
    for _ in range(20):
        disabled = random_preexisting_faults(spec, 2, rng, protect=protect)
        assert not (disabled & protect)


def test_random_faults_zero_count():
    spec = ClosSpec(n_leaves=4, n_spines=2)
    rng = np.random.Generator(np.random.PCG64(3))
    assert random_preexisting_faults(spec, 0, rng) == frozenset()


def test_random_faults_negative_count_rejected():
    spec = ClosSpec(n_leaves=4, n_spines=2)
    rng = np.random.Generator(np.random.PCG64(3))
    with pytest.raises(ValueError):
        random_preexisting_faults(spec, -1, rng)


def test_random_faults_too_many_rejected():
    spec = ClosSpec(n_leaves=2, n_spines=2)
    rng = np.random.Generator(np.random.PCG64(3))
    with pytest.raises(TopologyError):
        random_preexisting_faults(spec, 5, rng)


def test_random_faults_deterministic_per_seed():
    spec = ClosSpec(n_leaves=8, n_spines=4)
    a = random_preexisting_faults(spec, 4, np.random.Generator(np.random.PCG64(9)))
    b = random_preexisting_faults(spec, 4, np.random.Generator(np.random.PCG64(9)))
    assert a == b
