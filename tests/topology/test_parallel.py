"""Tests for parallel-link virtualization (§7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, TopologyError
from repro.topology.parallel import ParallelFabric, virtualize
from repro.units import GIB


BASE = ClosSpec(n_leaves=8, n_spines=2, hosts_per_leaf=1)


def test_virtual_spec_multiplies_spines():
    fabric = virtualize(BASE, 4)
    assert fabric.virtual_spec().n_spines == 8
    assert fabric.virtual_spec().n_leaves == BASE.n_leaves


def test_invalid_k():
    with pytest.raises(TopologyError):
        virtualize(BASE, 0)


def test_virtual_physical_roundtrip():
    fabric = virtualize(BASE, 3)
    for spine in range(BASE.n_spines):
        for member in range(3):
            virtual = fabric.virtual_spine(spine, member)
            assert fabric.physical_spine(virtual) == (spine, member)


def test_out_of_range_indices():
    fabric = virtualize(BASE, 2)
    with pytest.raises(TopologyError):
        fabric.virtual_spine(2, 0)
    with pytest.raises(TopologyError):
        fabric.virtual_spine(0, 2)
    with pytest.raises(TopologyError):
        fabric.physical_spine(4)


def test_physical_description():
    fabric = virtualize(BASE, 2)
    name = fabric.virtual_up_link(3, 1, 1)  # leaf3 -> spine1 member 1
    assert name == "up:L3->S3"
    assert fabric.physical_description(name) == "up:L3->S1#1"


def test_trunk_links_cover_both_directions():
    fabric = virtualize(BASE, 2)
    trunk = fabric.trunk_links(0, 1)
    assert len(trunk) == 4
    assert fabric.virtual_down_link(1, 0, 0) in trunk


def test_single_member_fault_detected_in_virtual_view():
    """A silent fault on one trunk member is just a virtual-spine link
    fault: FlowPulse detects it and the physical description names the
    trunk member."""
    fabric = virtualize(BASE, 2)
    spec = fabric.virtual_spec()
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), 8 * GIB)
    fault = fabric.virtual_down_link(1, 1, 3)  # spine1 member1 -> leaf3
    model = FabricModel(spec, silent={fault: 0.05}, mtu=1024)
    records = run_iterations(model, demand, 3, seed=21)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(spec, demand), DetectionConfig(threshold=0.01)
    )
    verdict = monitor.process_run(records)
    assert verdict.triggered
    assert fault in verdict.suspected_links()
    assert fabric.physical_description(fault) == "down:S1->L3#1"


def test_known_dead_member_absorbed_like_any_disabled_link():
    """Losing one trunk member reduces bandwidth but the remaining
    members keep the spine reachable — and the fault-aware model stays
    calibrated (the paper's 'remaining links can still reach the same
    set of hosts')."""
    fabric = virtualize(BASE, 2)
    spec = fabric.virtual_spec()
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), 8 * GIB)
    dead = frozenset({fabric.virtual_up_link(2, 0, 0), fabric.virtual_down_link(0, 0, 2)})
    model = FabricModel(spec, known_disabled=dead, mtu=1024)
    records = run_iterations(model, demand, 3, seed=22)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(spec, demand, known_disabled=dead),
        DetectionConfig(threshold=0.01),
    )
    verdict = monitor.process_run(records)
    assert not verdict.triggered
