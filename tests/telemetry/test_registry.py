"""Tests for the labeled metrics registry."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    NULL_INSTRUMENT,
    MetricsRegistry,
    TelemetryError,
)


def test_counter_identity_and_increment():
    registry = MetricsRegistry()
    counter = registry.counter("sweep.trials")
    counter.inc()
    counter.inc(4)
    assert registry.counter("sweep.trials") is counter
    assert counter.value == 5


def test_counter_rejects_decrease():
    registry = MetricsRegistry()
    with pytest.raises(TelemetryError):
        registry.counter("x").inc(-1)


def test_labels_distinguish_instruments():
    registry = MetricsRegistry()
    a = registry.counter("link.fault_drops", link="up:L0->S0")
    b = registry.counter("link.fault_drops", link="up:L1->S0")
    a.inc()
    assert b.value == 0
    # Label order does not matter.
    c = registry.gauge("g", x="1", y="2")
    assert registry.gauge("g", y="2", x="1") is c


def test_same_name_different_kind_are_distinct():
    registry = MetricsRegistry()
    registry.counter("n").inc()
    registry.gauge("n").set(7.0)
    assert registry.counter("n").value == 1
    assert registry.gauge("n").value == 7.0
    assert len(registry) == 2


def test_gauge_set_and_inc():
    gauge = MetricsRegistry().gauge("queue.depth")
    gauge.set(10.0)
    gauge.inc(-3.0)
    assert gauge.value == 7.0


def test_histogram_buckets_and_mean():
    registry = MetricsRegistry()
    hist = registry.histogram("wall_s", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.bucket_counts == [1, 2, 1, 1]
    assert hist.mean == pytest.approx((0.05 + 0.5 + 0.5 + 5.0 + 50.0) / 5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(TelemetryError):
        MetricsRegistry().histogram("h", buckets=(1.0, 0.5))


def test_empty_name_rejected():
    with pytest.raises(TelemetryError):
        MetricsRegistry().counter("")


def test_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("anything", label="x")
    assert counter is NULL_INSTRUMENT
    assert registry.gauge("g") is NULL_INSTRUMENT
    assert registry.histogram("h") is NULL_INSTRUMENT
    # All mutators work and do nothing.
    counter.inc()
    counter.set(3.0)
    counter.observe(1.0)
    assert registry.snapshot() == []
    assert len(registry) == 0


def test_snapshot_is_sorted_and_json_ready():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a", k="v").inc()
    registry.gauge("a").set(1.5)
    registry.histogram("h").observe(0.2)
    snapshot = registry.snapshot()
    assert [s["type"] for s in snapshot] == ["metric"] * 4
    assert snapshot == sorted(
        snapshot, key=lambda s: (s["kind"], s["name"], sorted(s["labels"].items()))
    )
    json.dumps(snapshot)  # must be serializable as-is


# ----------------------------------------------------------------------
# Cross-process merging (the fleet service's aggregation path)
# ----------------------------------------------------------------------
def test_merge_snapshot_adds_counters_per_label():
    worker_a = MetricsRegistry()
    worker_a.counter("fleet.records", shard="0").inc(10)
    worker_b = MetricsRegistry()
    worker_b.counter("fleet.records", shard="1").inc(7)

    fleet = MetricsRegistry()
    fleet.counter("fleet.records", shard="0").inc(1)
    fleet.merge_snapshot(worker_a.snapshot())
    fleet.merge_snapshot(worker_b.snapshot())
    assert fleet.counter("fleet.records", shard="0").value == 11
    assert fleet.counter("fleet.records", shard="1").value == 7


def test_merge_snapshot_gauge_takes_incoming_value():
    worker = MetricsRegistry()
    worker.gauge("depth").set(42.0)
    fleet = MetricsRegistry()
    fleet.gauge("depth").set(3.0)
    fleet.merge_snapshot(worker.snapshot())
    assert fleet.gauge("depth").value == 42.0


def test_merge_snapshot_adds_histogram_buckets():
    bounds = (0.1, 1.0, 10.0)
    worker = MetricsRegistry()
    for value in (0.05, 0.5, 5.0, 50.0):
        worker.histogram("lat", buckets=bounds).observe(value)
    fleet = MetricsRegistry()
    fleet.histogram("lat", buckets=bounds).observe(0.5)
    fleet.merge_snapshot(worker.snapshot())
    merged = fleet.histogram("lat", buckets=bounds)
    assert merged.count == 5
    assert merged.bucket_counts == [1, 2, 1, 1]
    assert merged.total == pytest.approx(56.05)


def test_merge_snapshot_histogram_bounds_mismatch_raises():
    worker = MetricsRegistry()
    worker.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
    fleet = MetricsRegistry()
    fleet.histogram("lat", buckets=(0.5, 5.0)).observe(0.7)
    with pytest.raises(TelemetryError, match="bounds mismatch"):
        fleet.merge_snapshot(worker.snapshot())


def test_merge_snapshot_round_trips_through_json():
    import json

    worker = MetricsRegistry()
    worker.counter("c").inc(3)
    worker.histogram("h").observe(0.02)
    wire = json.loads(json.dumps(worker.snapshot()))  # the IPC boundary
    fleet = MetricsRegistry()
    fleet.merge_snapshot(wire)
    assert fleet.counter("c").value == 3
    assert fleet.histogram("h").count == 1


def test_merge_into_disabled_registry_is_noop():
    worker = MetricsRegistry()
    worker.counter("c").inc()
    disabled = MetricsRegistry(enabled=False)
    disabled.merge_snapshot(worker.snapshot())
    assert disabled.snapshot() == []


def test_merge_unknown_kind_raises():
    fleet = MetricsRegistry()
    with pytest.raises(TelemetryError, match="cannot merge"):
        fleet.merge_snapshot([{"kind": "summary", "name": "x", "labels": {}}])
