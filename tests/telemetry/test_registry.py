"""Tests for the labeled metrics registry."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    NULL_INSTRUMENT,
    MetricsRegistry,
    TelemetryError,
)


def test_counter_identity_and_increment():
    registry = MetricsRegistry()
    counter = registry.counter("sweep.trials")
    counter.inc()
    counter.inc(4)
    assert registry.counter("sweep.trials") is counter
    assert counter.value == 5


def test_counter_rejects_decrease():
    registry = MetricsRegistry()
    with pytest.raises(TelemetryError):
        registry.counter("x").inc(-1)


def test_labels_distinguish_instruments():
    registry = MetricsRegistry()
    a = registry.counter("link.fault_drops", link="up:L0->S0")
    b = registry.counter("link.fault_drops", link="up:L1->S0")
    a.inc()
    assert b.value == 0
    # Label order does not matter.
    c = registry.gauge("g", x="1", y="2")
    assert registry.gauge("g", y="2", x="1") is c


def test_same_name_different_kind_are_distinct():
    registry = MetricsRegistry()
    registry.counter("n").inc()
    registry.gauge("n").set(7.0)
    assert registry.counter("n").value == 1
    assert registry.gauge("n").value == 7.0
    assert len(registry) == 2


def test_gauge_set_and_inc():
    gauge = MetricsRegistry().gauge("queue.depth")
    gauge.set(10.0)
    gauge.inc(-3.0)
    assert gauge.value == 7.0


def test_histogram_buckets_and_mean():
    registry = MetricsRegistry()
    hist = registry.histogram("wall_s", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.bucket_counts == [1, 2, 1, 1]
    assert hist.mean == pytest.approx((0.05 + 0.5 + 0.5 + 5.0 + 50.0) / 5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(TelemetryError):
        MetricsRegistry().histogram("h", buckets=(1.0, 0.5))


def test_empty_name_rejected():
    with pytest.raises(TelemetryError):
        MetricsRegistry().counter("")


def test_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("anything", label="x")
    assert counter is NULL_INSTRUMENT
    assert registry.gauge("g") is NULL_INSTRUMENT
    assert registry.histogram("h") is NULL_INSTRUMENT
    # All mutators work and do nothing.
    counter.inc()
    counter.set(3.0)
    counter.observe(1.0)
    assert registry.snapshot() == []
    assert len(registry) == 0


def test_snapshot_is_sorted_and_json_ready():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a", k="v").inc()
    registry.gauge("a").set(1.5)
    registry.histogram("h").observe(0.2)
    snapshot = registry.snapshot()
    assert [s["type"] for s in snapshot] == ["metric"] * 4
    assert snapshot == sorted(
        snapshot, key=lambda s: (s["kind"], s["name"], sorted(s["labels"].items()))
    )
    json.dumps(snapshot)  # must be serializable as-is
