"""Tests for the detection audit trail and its golden-parity contract."""

from __future__ import annotations

import json

from repro.analysis.experiments import ExperimentConfig, run_trial_with_verdict
from repro.telemetry import (
    AUDIT_EVENT_TYPES,
    TelemetrySession,
    alarms,
    audit_events,
    audit_summary,
    event_to_json,
    iterations,
    suspected_links,
)

CONFIG = ExperimentConfig(
    n_leaves=4,
    n_spines=2,
    collective_bytes=2_000_000,
    drop_rate=0.05,
    n_iterations=3,
)


def run_with_audit(config=CONFIG, injected=True):
    session = TelemetrySession()
    outcome, verdict = run_trial_with_verdict(
        config, injected=injected, telemetry=session
    )
    return outcome, verdict, session


def test_audit_trail_matches_verdict():
    outcome, verdict, session = run_with_audit()
    events = list(session.events)
    iteration_events = iterations(events)
    assert len(iteration_events) == CONFIG.n_iterations
    for event, iteration_verdict in zip(iteration_events, verdict.verdicts):
        assert event["iteration"] == iteration_verdict.iteration
        assert event["triggered"] == iteration_verdict.triggered
        assert event["max_score"] == iteration_verdict.max_score
    # Every alarm in the verdicts appears in the flat alarm stream.
    expected_alarms = sum(
        len(r.alarms) for v in verdict.verdicts for r in v.results
    )
    assert len(alarms(events)) == expected_alarms
    assert suspected_links(events) == outcome.suspected_links


def test_audit_leaf_carries_port_table():
    _outcome, verdict, session = run_with_audit()
    leaf_events = session.events.of_type("audit.leaf")
    judged = [v for v in verdict.verdicts if not v.skipped]
    assert len(leaf_events) == sum(len(v.results) for v in judged)
    event = leaf_events[0]
    assert event["ports"], "port table must not be empty"
    for port in event["ports"]:
        assert set(port) == {"spine", "predicted", "observed", "deviation", "alarm"}
    # Alarm flags agree with the leaf's triggered bit.
    assert event["triggered"] == any(p["alarm"] for p in event["ports"])


def test_audit_events_are_strict_json():
    _outcome, _verdict, session = run_with_audit()
    for event in session.events:
        json.loads(event_to_json(event))


def test_skipped_iterations_audited():
    config = ExperimentConfig(
        n_leaves=4,
        n_spines=2,
        collective_bytes=2_000_000,
        drop_rate=0.05,
        predictor="learned",
        warmup_iterations=2,
        n_iterations=5,
    )
    _outcome, verdict, session = run_with_audit(config)
    summary = audit_summary(session.events)
    assert summary["iterations"] == config.n_iterations
    assert summary["skipped"] == sum(1 for v in verdict.verdicts if v.skipped)
    assert summary["skipped"] >= config.warmup_iterations


def test_audit_summary_rollup():
    outcome, _verdict, session = run_with_audit()
    summary = audit_summary(session.events)
    assert summary["triggered_iterations"] > 0
    assert summary["max_score"] > CONFIG.threshold
    assert summary["suspected_links"] == sorted(outcome.suspected_links)
    assert set(e["type"] for e in audit_events(session.events)) <= set(
        AUDIT_EVENT_TYPES
    )


def test_golden_parity_telemetry_changes_nothing():
    """The acceptance contract: a telemetry-enabled run produces
    bit-identical verdicts to a telemetry-off run."""
    for injected in (True, False):
        plain_outcome, plain_verdict = run_trial_with_verdict(
            CONFIG, injected=injected
        )
        audited_outcome, audited_verdict, _session = run_with_audit(
            injected=injected
        )
        assert audited_outcome == plain_outcome
        assert audited_verdict.verdicts == plain_verdict.verdicts
