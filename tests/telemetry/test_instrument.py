"""Tests for simnet telemetry wiring and network snapshots."""

from __future__ import annotations

import numpy as np

from repro import units
from repro.simnet import (
    DropFault,
    Link,
    Network,
    Node,
    Packet,
    PfcConfig,
    PfcController,
    Priority,
    Simulator,
)
from repro.telemetry import TelemetrySession, snapshot_network
from repro.topology import ClosSpec, down_link


def run_faulty_network(telemetry=None, drop_rate=0.3):
    net = Network(
        ClosSpec(n_leaves=2, n_spines=2),
        seed=1,
        mtu=512,
        telemetry=telemetry,
    )
    net.inject_fault(down_link(0, 1), DropFault(drop_rate))
    net.inject_fault(down_link(1, 1), DropFault(drop_rate))
    net.host(1).on_message(lambda *a: None)
    net.host(0).send(1, 20_000)
    net.run()
    return net


def test_engine_emits_run_summary():
    session = TelemetrySession()
    net = run_faulty_network(session)
    (run_event,) = session.events.of_type("engine.run")
    assert run_event["executed"] > 0
    assert run_event["events_per_sec"] > 0
    assert run_event["end_ns"] == net.now
    assert session.counter("engine.events").value == run_event["executed"]


def test_link_drops_and_transport_rtos_emitted():
    session = TelemetrySession()
    net = run_faulty_network(session)
    drops = session.events.of_type("link.drop")
    assert len(drops) == net.total_fault_drops() > 0
    assert all(d["link"].startswith("down:") for d in drops)
    rtos = session.events.of_type("transport.rto")
    assert len(rtos) == net.host(0).transport.retransmitted_packets > 0
    assert all(r["host"] == 0 for r in rtos)


def test_untelemetered_network_behaves_identically():
    plain = run_faulty_network(None)
    audited = run_faulty_network(TelemetrySession())
    assert plain.now == audited.now
    assert plain.total_fault_drops() == audited.total_fault_drops()
    assert (
        plain.host(0).transport.retransmitted_packets
        == audited.host(0).transport.retransmitted_packets
    )


def test_pfc_pause_resume_events():
    class _Null(Node):
        def receive(self, packet, link):
            pass

    session = TelemetrySession()
    sim = Simulator()
    rng = np.random.Generator(np.random.PCG64(0))
    watched = Link(sim, "watched", _Null(), 8, 0, rng)  # 8 bps: glacial
    feeder = Link(sim, "feeder", _Null(), units.GBPS, 0, rng)
    controller = PfcController(
        watched,
        [feeder],
        PfcConfig(xoff_bytes=1000, xon_bytes=500),
        telemetry=session,
    )
    def pkt(size):
        return Packet(src_host=0, dst_host=1, size=size, priority=Priority.NORMAL)

    watched.enqueue(pkt(10))
    watched.enqueue(pkt(600))
    watched.enqueue(pkt(600))  # backlog >= xoff: pause
    assert controller.paused
    (pause,) = session.events.of_type("pfc.pause")
    assert pause["link"] == "watched"
    assert pause["backlog_bytes"] >= 1000
    sim.run()  # drain: resume fires on the way down
    assert session.events.of_type("pfc.resume")
    assert session.counter("pfc.pauses", link="watched").value == 1


def test_snapshot_network_summarizes_state():
    session = TelemetrySession()
    net = run_faulty_network(session)
    snapshot_network(session, net)
    (summary,) = session.events.of_type("net.summary")
    assert summary["fault_drops"] == net.total_fault_drops()
    link_events = session.events.of_type("net.link")
    assert link_events, "busy links must be reported"
    names = {e["link"] for e in link_events}
    assert all(net.links[name].tx_packets > 0 for name in names)
    (transport,) = session.events.of_type("net.transport")
    assert transport["retransmitted_packets"] > 0
    assert session.gauge("net.fault_drops").value == net.total_fault_drops()
