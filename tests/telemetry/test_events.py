"""Tests for structured event logging and JSONL I/O."""

from __future__ import annotations

import io
import json
import math

import pytest

from repro.telemetry import (
    EventLog,
    TelemetrySession,
    desanitize_float,
    event_to_json,
    read_jsonl,
    read_jsonl_tolerant,
)


def test_emit_records_in_order_with_type():
    log = EventLog()
    log.emit("a.first", n=1)
    log.emit("b.second", n=2)
    assert [e["type"] for e in log] == ["a.first", "b.second"]
    assert log.of_type("a.first") == [{"type": "a.first", "n": 1}]
    assert log.types() == {"a.first": 1, "b.second": 1}
    assert len(log) == 2 and log.emitted == 2


def test_bounded_log_evicts_oldest_but_counts_all():
    log = EventLog(max_events=3)
    for n in range(10):
        log.emit("tick", n=n)
    assert len(log) == 3
    assert [e["n"] for e in log] == [7, 8, 9]
    assert log.emitted == 10


def test_stream_write_through_survives_eviction():
    stream = io.StringIO()
    log = EventLog(max_events=2, stream=stream)
    for n in range(5):
        log.emit("tick", n=n)
    lines = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert [e["n"] for e in lines] == [0, 1, 2, 3, 4]


def test_event_to_json_is_strict_and_sorted():
    line = event_to_json({"b": 2, "a": 1, "type": "t"})
    assert line == '{"a": 1, "b": 2, "type": "t"}'


def test_non_finite_floats_become_strings():
    line = event_to_json(
        {"type": "t", "dev": math.inf, "nested": {"x": [math.nan, -math.inf]}}
    )
    parsed = json.loads(line)  # must be strict-parseable
    assert parsed["dev"] == "Infinity"
    assert parsed["nested"]["x"] == ["NaN", "-Infinity"]


def test_json_default_handles_sets_tuples_enums():
    from repro.core.prediction.learning import LearningEvent

    line = event_to_json(
        {
            "type": "t",
            "links": frozenset({"b", "a"}),
            "pair": (1, 2),
            "event": LearningEvent.NONE,
        }
    )
    parsed = json.loads(line)
    assert parsed["links"] == ["a", "b"]
    assert parsed["pair"] == [1, 2]
    assert parsed["event"] == "NONE"


def test_dump_and_read_jsonl_roundtrip(tmp_path):
    log = EventLog()
    log.emit("x", value=1.5)
    log.emit("y", items=[1, 2])
    path = tmp_path / "events.jsonl"
    assert log.dump_jsonl(path) == 2
    assert read_jsonl(path) == [
        {"type": "x", "value": 1.5},
        {"type": "y", "items": [1, 2]},
    ]


def test_read_jsonl_raises_on_truncated_final_line(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"type": "x", "n": 1}\n{"type": "y", "n"')
    with pytest.raises(json.JSONDecodeError):
        read_jsonl(path)  # strict default is unchanged


def test_read_jsonl_tolerant_skips_and_counts_truncated_line(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"type": "x", "n": 1}\n{"type": "y", "n"')
    events, malformed = read_jsonl_tolerant(path)
    assert events == [{"type": "x", "n": 1}]
    assert malformed == 1
    # the tolerant kwarg on read_jsonl is the same reader
    assert read_jsonl(path, tolerant=True) == events


def test_read_jsonl_tolerant_skips_non_dict_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('[1, 2]\n{"type": "x"}\n"just a string"\n\n')
    events, malformed = read_jsonl_tolerant(path)
    assert events == [{"type": "x"}]
    assert malformed == 2  # blank lines are not malformed, non-dicts are


def test_desanitize_float_restores_non_finite_values():
    assert desanitize_float("Infinity") == math.inf
    assert desanitize_float("-Infinity") == -math.inf
    assert math.isnan(desanitize_float("NaN"))
    assert desanitize_float(0.5) == 0.5
    assert desanitize_float("not a float") == "not a float"
    assert desanitize_float(None) is None


def test_non_finite_sanitization_round_trip():
    event = {"type": "t", "dev": -math.inf, "score": math.nan}
    parsed = json.loads(event_to_json(event))
    assert desanitize_float(parsed["dev"]) == -math.inf
    assert math.isnan(desanitize_float(parsed["score"]))


def test_session_write_jsonl_appends_metric_lines(tmp_path):
    session = TelemetrySession()
    session.emit("sweep.trial", trial=0)
    session.counter("sweep.trials").inc(3)
    session.histogram("wall_s").observe(0.2)
    path = tmp_path / "telemetry.jsonl"
    n = session.write_jsonl(path)
    lines = read_jsonl(path)
    assert len(lines) == n == 3
    metrics = [l for l in lines if l["type"] == "metric"]
    assert {m["kind"] for m in metrics} == {"counter", "histogram"}
    assert [l for l in lines if l["type"] == "sweep.trial"]
