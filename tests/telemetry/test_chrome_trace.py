"""Tests for packet capture and Chrome trace-event export."""

from __future__ import annotations

import json

import pytest

from repro.simnet.trace import Tracer
from repro.telemetry import (
    TelemetrySession,
    capture_fabric_trace,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.topology.graph import down_link


@pytest.fixture(scope="module")
def faulty_capture():
    return capture_fabric_trace(
        n_leaves=4,
        n_spines=2,
        collective_bytes=200_000,
        fault_link=down_link(0, 1),
        drop_rate=0.2,
        seed=3,
    )


def test_capture_runs_and_drops(faulty_capture):
    assert faulty_capture.fault_drops > 0
    assert faulty_capture.tracer.counts["tx"] > 0
    assert faulty_capture.tracer.counts["drop"] == faulty_capture.fault_drops


def test_collective_bytes_are_capped():
    from repro.telemetry import DEFAULT_CAPTURE_BYTES

    capture = capture_fabric_trace(
        n_leaves=2, n_spines=2, collective_bytes=10**12
    )
    injected = sum(
        e.size
        for e in capture.tracer.events
        if e.event == "tx" and e.kind == "data" and e.link.startswith("hostup:")
    )
    # Payload entering the fabric stays at the cap (healthy run: no
    # retransmissions), regardless of the requested collective size.
    assert 0 < injected <= DEFAULT_CAPTURE_BYTES + 2 * 1024


def test_trace_structure(faulty_capture):
    trace = chrome_trace(faulty_capture.tracer)
    events = trace["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "C"} <= phases
    # Process + one named thread per traced link.
    meta = [e for e in events if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "fabric"
    thread_names = {e["args"]["name"] for e in meta[1:]}
    assert thread_names == {e.link for e in faulty_capture.tracer.events}
    # Drop spans are categorized for highlighting, and the counter
    # track ends at the total drop count.
    drops = [e for e in events if e.get("cat") == "drop"]
    assert len(drops) == faulty_capture.fault_drops
    assert all(e["name"].startswith("DROP ") for e in drops)
    counters = [e for e in events if e["ph"] == "C"]
    assert counters[-1]["args"]["drops"] == faulty_capture.fault_drops


def test_complete_events_span_propagation(faulty_capture):
    spans = [
        e
        for e in chrome_trace_events(faulty_capture.tracer.events)
        if e["ph"] == "X" and e["args"]["outcome"] == "rx"
    ]
    assert spans
    assert all(e["dur"] >= 0 for e in spans)
    assert any(e["dur"] > 0 for e in spans)


def test_written_file_is_loadable_json(tmp_path, faulty_capture):
    path = tmp_path / "trace.json"
    n = write_chrome_trace(path, faulty_capture.tracer, metadata={"run": "test"})
    trace = json.loads(path.read_text())
    assert len(trace["traceEvents"]) == n
    assert trace["displayTimeUnit"] == "ns"
    assert trace["otherData"]["run"] == "test"
    assert trace["otherData"]["recorded"]["tx"] > 0


def test_filtered_tracer_reports_seen_totals():
    from repro.simnet import Network
    from repro.topology import ClosSpec

    tracer = Tracer(predicate=lambda p: p.kind.value == "data")
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0, mtu=1000, tracer=tracer)
    net.host(1).on_message(lambda *a: None)
    net.host(0).send(1, 5_000)
    net.run()
    trace = chrome_trace(tracer)
    # ACKs were filtered from the buffer but still counted in `seen`.
    assert trace["otherData"]["seen"]["rx"] > trace["otherData"]["recorded"]["rx"]
    assert {e["cat"] for e in trace["traceEvents"] if e["ph"] == "X"} == {"data"}


def test_capture_collects_telemetry_events():
    session = TelemetrySession()
    capture = capture_fabric_trace(
        n_leaves=4,
        n_spines=2,
        collective_bytes=200_000,
        fault_link=down_link(0, 1),
        drop_rate=0.2,
        seed=3,
        telemetry=session,
    )
    types = session.events.types()
    assert types.get("engine.run") == 1
    assert types.get("link.drop") == capture.fault_drops
    drop_event = session.events.of_type("link.drop")[0]
    assert drop_event["link"] == down_link(0, 1)
    assert {"time_ns", "pid", "src_host", "dst_host", "size"} <= set(drop_event)
