"""Tests for the strawman baseline detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import (
    CentralizedAggregation,
    DetectionConfig,
    ProbingDetector,
    SpatialSymmetryDetector,
)
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, ControlPlane, down_link, up_link


SPEC = ClosSpec(n_leaves=4, n_spines=4, hosts_per_leaf=1)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 64 * 1024 * 1024)


def simulate(disabled=frozenset(), fault=None, seed=0):
    model = FabricModel(SPEC, known_disabled=disabled, mtu=256)
    schedule = (lambda it: fault) if fault else None
    return run_iterations(model, DEMAND, 1, seed=seed, fault_schedule=schedule)[0]


# ----------------------------------------------------------------------
# Spatial symmetry
# ----------------------------------------------------------------------
def test_spatial_quiet_on_pristine_fabric():
    detector = SpatialSymmetryDetector(
        DetectionConfig(threshold=0.02), n_spines=SPEC.n_spines
    )
    verdicts = detector.evaluate_fabric(simulate())
    assert not any(v.triggered for v in verdicts)


def test_spatial_catches_new_fault_on_pristine_fabric():
    detector = SpatialSymmetryDetector(
        DetectionConfig(threshold=0.02), n_spines=SPEC.n_spines
    )
    verdicts = detector.evaluate_fabric(
        simulate(fault={down_link(0, 1): 0.2})
    )
    assert verdicts[1].triggered


def test_spatial_false_positives_under_preexisting_faults():
    """The paper's §1 argument: pre-existing faults break spatial
    symmetry, so this detector alarms on a perfectly healthy fabric."""
    disabled = frozenset({up_link(0, 1), down_link(1, 0)})
    detector = SpatialSymmetryDetector(
        DetectionConfig(threshold=0.02), n_spines=SPEC.n_spines
    )
    verdicts = detector.evaluate_fabric(simulate(disabled=disabled, seed=2))
    assert any(v.triggered for v in verdicts)  # false alarms, no fault exists


def test_spatial_single_port_never_triggers():
    from repro.simnet import FlowTag, IterationRecord

    record = IterationRecord(
        leaf=0, tag=FlowTag(1, 0), port_bytes={0: 100}, sender_bytes={}, start_ns=0, end_ns=1
    )
    verdict = SpatialSymmetryDetector().evaluate(record)
    assert not verdict.triggered


# ----------------------------------------------------------------------
# Probing
# ----------------------------------------------------------------------
def test_probe_paths_cover_every_leaf_pair_spine():
    control = ControlPlane(SPEC)
    prober = ProbingDetector(SPEC, control)
    paths = prober.paths()
    assert len(paths) == 4 * 3 * 4  # src x dst x spine


def test_probe_paths_respect_disabled_links():
    control = ControlPlane(SPEC, known_disabled=frozenset({up_link(0, 0)}))
    prober = ProbingDetector(SPEC, control)
    assert (0, 1, 0) not in prober.paths()
    assert (1, 0, 0) in prober.paths()


def test_probe_overhead_scales_quadratically():
    small = ProbingDetector(SPEC, ControlPlane(SPEC))
    big_spec = ClosSpec(n_leaves=8, n_spines=8, hosts_per_leaf=1)
    big = ProbingDetector(big_spec, ControlPlane(big_spec))
    assert big.bytes_per_round() > 4 * small.bytes_per_round()


def test_probe_round_detection_probability(rng):
    control = ControlPlane(SPEC)
    prober = ProbingDetector(SPEC, control, probes_per_path=1)
    faulty_path = (0, 1, 2)
    detected = sum(
        prober.run_round({faulty_path: 0.3}, rng).detected for _ in range(300)
    )
    assert 60 < detected < 120  # ~ 30% of rounds


def test_probe_expected_rounds():
    prober = ProbingDetector(SPEC, ControlPlane(SPEC), probes_per_path=2)
    # Per round: 1-(1-0.5)^2 = 0.75 -> 4/3 rounds.
    assert prober.expected_rounds_to_detect(0.5) == pytest.approx(4 / 3)
    with pytest.raises(ValueError):
        prober.expected_rounds_to_detect(0.0)


def test_probe_validation():
    with pytest.raises(ValueError):
        ProbingDetector(SPEC, ControlPlane(SPEC), probes_per_path=0)


def test_flowpulse_injects_zero_probe_bytes():
    """The contrast the paper draws: FlowPulse is passive."""
    prober = ProbingDetector(SPEC, ControlPlane(SPEC))
    assert prober.bytes_per_round() > 0  # probing always pays


# ----------------------------------------------------------------------
# Centralized aggregation
# ----------------------------------------------------------------------
def test_aggregation_cost_scales_with_fabric():
    small = CentralizedAggregation(SPEC)
    big_spec = ClosSpec(n_leaves=32, n_spines=16, hosts_per_leaf=1)
    big = CentralizedAggregation(big_spec)
    assert (
        big.cost_per_interval().bytes_transferred
        > 10 * small.cost_per_interval().bytes_transferred
    )


def test_aggregation_latency_is_half_interval():
    agg = CentralizedAggregation(SPEC, report_interval_iterations=20)
    assert agg.cost_per_interval().reaction_latency_iterations == 10.0


def test_aggregation_detects_counter_mismatch():
    agg = CentralizedAggregation(SPEC)
    assert agg.detects(tx_packets=1000, rx_packets=998)
    assert not agg.detects(tx_packets=1000, rx_packets=1000)


def test_aggregation_validation():
    with pytest.raises(ValueError):
        CentralizedAggregation(SPEC, report_interval_iterations=0)
