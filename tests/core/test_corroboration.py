"""Tests for spine-tier corroboration of ambiguous localizations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
from repro.core.corroboration import (
    CorroborationError,
    SpineCorroborator,
)
from repro.fastsim import FabricModel
from repro.fastsim.model import simulate_iteration_with_spines
from repro.simnet import FlowTag
from repro.topology import ClosSpec, down_link, up_link
from repro.units import GIB

SPEC = ClosSpec(n_leaves=16, n_spines=8, hosts_per_leaf=1)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 4 * GIB)


def run_with_spines(silent, seed=0):
    model = FabricModel(SPEC, silent=silent, mtu=1024)
    rng = np.random.Generator(np.random.PCG64(seed))
    return simulate_iteration_with_spines(
        model, DEMAND, rng, tag=FlowTag(1, 0)
    )


def ambiguous_suspicions(leaves):
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, DEMAND), DetectionConfig(threshold=0.01)
    )
    verdict = monitor.process_iteration(leaves)
    assert verdict.triggered
    return [s for loc in verdict.localizations for s in loc.suspicions]


def test_spine_record_volume_conservation():
    leaves, spines = run_with_spines({})
    # Every byte that reaches a leaf crossed a spine exactly once.
    leaf_total = sum(r.total_bytes for r in leaves)
    spine_total = sum(r.total_bytes for r in spines)
    assert spine_total == leaf_total


def test_expected_spine_ingress_matches_healthy_measurement():
    corroborator = SpineCorroborator(SPEC, DEMAND)
    _leaves, spines = run_with_spines({}, seed=1)
    for record in spines:
        for src_leaf, observed in record.port_bytes.items():
            expected = corroborator.expected[(record.leaf, src_leaf)]
            assert abs(observed - expected) / expected < 0.02


def test_down_fault_resolved_to_down_link():
    fault = down_link(3, 9)
    leaves, spines = run_with_spines({fault: 0.05}, seed=2)
    suspicions = ambiguous_suspicions(leaves)
    assert {s.link for s in suspicions} == {fault, up_link(8, 3)}
    corroborator = SpineCorroborator(SPEC, DEMAND)
    resolved = corroborator.resolve(suspicions, spines)
    assert len(resolved) == 1
    assert resolved[0].link == fault
    assert resolved[0].ruled_out == up_link(8, 3)
    # The spine saw full (or surplus) volume from the sender.
    assert resolved[0].spine_deficit > -0.01


def test_up_fault_resolved_to_up_link():
    fault = up_link(8, 3)  # sender leaf 8 -> spine 3
    leaves, spines = run_with_spines({fault: 0.05}, seed=3)
    suspicions = ambiguous_suspicions(leaves)
    assert {s.link for s in suspicions} == {fault, down_link(3, 9)}
    corroborator = SpineCorroborator(SPEC, DEMAND)
    resolved = corroborator.resolve(suspicions, spines)
    assert len(resolved) == 1
    assert resolved[0].link == fault
    assert resolved[0].ruled_out == down_link(3, 9)
    # The spine itself was short of the sender's traffic.
    assert resolved[0].spine_deficit < -0.03


def test_unambiguous_suspicions_pass_through_untouched():
    corroborator = SpineCorroborator(SPEC, DEMAND)
    _leaves, spines = run_with_spines({}, seed=4)
    from repro.core.localization import LinkSuspicion

    lone = LinkSuspicion(
        link=down_link(2, 5),
        kind="local",
        leaf=5,
        spine=2,
        affected_senders=(4, 6),
        deviation=-0.1,
    )
    assert corroborator.resolve([lone], spines) == []


def test_missing_spine_record_raises():
    fault = down_link(3, 9)
    leaves, _spines = run_with_spines({fault: 0.05}, seed=5)
    suspicions = ambiguous_suspicions(leaves)
    corroborator = SpineCorroborator(SPEC, DEMAND)
    with pytest.raises(CorroborationError):
        corroborator.resolve(suspicions, [])


def test_threshold_validation():
    with pytest.raises(CorroborationError):
        SpineCorroborator(SPEC, DEMAND, threshold=0.0)
