"""Detection and localization under multiple simultaneous faults and
exotic fault types (black holes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import _same_cable
from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, down_link, up_link
from repro.units import GIB

SPEC = ClosSpec(n_leaves=16, n_spines=8, hosts_per_leaf=1)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 4 * GIB)


def monitor_run(silent, seed=0, threshold=0.01, n=3):
    model = FabricModel(SPEC, silent=silent, mtu=1024)
    records = run_iterations(model, DEMAND, n, seed=seed)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, DEMAND), DetectionConfig(threshold=threshold)
    )
    return monitor.process_run(records)


def test_two_simultaneous_faults_both_localized():
    faults = {down_link(1, 3): 0.05, down_link(6, 11): 0.05}
    verdict = monitor_run(faults, seed=71)
    assert verdict.triggered
    suspected = verdict.suspected_links()
    for fault in faults:
        assert any(_same_cable(link, fault) for link in suspected), fault


def test_three_faults_mixed_directions():
    faults = {
        down_link(0, 1): 0.08,
        up_link(5, 3): 0.08,
        down_link(7, 14): 0.08,
    }
    verdict = monitor_run(faults, seed=72)
    suspected = verdict.suspected_links()
    for fault in faults:
        assert any(_same_cable(link, fault) for link in suspected), fault


def test_faults_on_same_leaf_different_spines():
    faults = {down_link(2, 9): 0.06, down_link(5, 9): 0.06}
    verdict = monitor_run(faults, seed=73)
    # Leaf 9 alarms on two distinct ports.
    alarming_ports = {
        (r.leaf, a.spine)
        for v in verdict.verdicts
        for r in v.results
        if r.triggered
        for a in r.deficit_alarms()
    }
    assert (9, 2) in alarming_ports
    assert (9, 5) in alarming_ports


def test_total_silent_path_failure_is_a_loud_signal():
    """A 100% silent drop (transient black hole) on one path: the port
    receives nothing (deviation -1), and the retransmitted copies show
    up as a ~1/(s-1) surplus on the surviving ports."""
    verdict = monitor_run({down_link(3, 7): 1.0}, seed=74, threshold=0.05)
    assert verdict.triggered
    deviations = [
        a.deviation
        for v in verdict.verdicts
        for r in v.results
        if r.leaf == 7
        for a in r.alarms
    ]
    assert min(deviations) == pytest.approx(-1.0)
    surplus = [d for d in deviations if d > 0]
    assert surplus
    assert max(surplus) == pytest.approx(1 / (SPEC.n_spines - 1), rel=0.1)


def test_destination_black_hole_on_simnet():
    """FIB-corruption black hole (paper §1): a spine silently drops
    packets for one destination only.  The destination's leaf sees the
    deficit; other leaves served by the same spine stay clean."""
    from repro.collectives import StagedCollectiveRunner, ring_reduce_scatter_stages
    from repro.simnet import BlackHoleFault, Network

    spec = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)
    net = Network(spec, seed=75, spray="round_robin", mtu=512)
    # Spine 1's downlink to leaf 3 black-holes traffic to host 3 only.
    net.inject_fault(
        down_link(1, 3), BlackHoleFault(dst_hosts=frozenset({3}))
    )
    collectors = net.install_collectors(job_id=1)
    ring = locality_optimized_ring(spec.n_hosts)
    stages = ring_reduce_scatter_stages(ring, 400_000)
    StagedCollectiveRunner(net, 1, stages, iterations=2).run()
    net.finalize_collectors()

    demand = ring_demand(ring, 400_000)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(spec, demand), DetectionConfig(threshold=0.05)
    )
    matrix = [
        [collectors[leaf].records[i] for leaf in range(spec.n_leaves)]
        for i in range(2)
    ]
    verdict = monitor.process_run(matrix)
    assert verdict.triggered
    # Only leaf 3 raises deficit alarms.
    leaves_alarming = {
        r.leaf
        for v in verdict.verdicts
        for r in v.results
        if r.deficit_alarms()
    }
    assert leaves_alarming == {3}
    assert down_link(1, 3) in verdict.suspected_links()
