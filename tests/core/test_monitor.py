"""Tests for the end-to-end FlowPulse monitor."""

from __future__ import annotations

import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import (
    AnalyticalPredictor,
    DetectionConfig,
    FlowPulseMonitor,
    LearnedPredictor,
    LearningEvent,
    score_for_roc,
)
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, down_link


SPEC = ClosSpec(n_leaves=4, n_spines=4, hosts_per_leaf=1)
# Large enough that multinomial spray noise (~sqrt(s/n) relative) sits
# well below the 1 % detection threshold at mtu=256.
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 256 * 1024 * 1024)


def monitor_with_analytical(threshold=0.01):
    predictor = AnalyticalPredictor(SPEC, DEMAND)
    return FlowPulseMonitor(predictor, DetectionConfig(threshold=threshold))


def simulate(fault=None, n=4, seed=0, mtu=256):
    model = FabricModel(SPEC, mtu=mtu)
    schedule = (lambda it: fault) if fault else None
    return run_iterations(model, DEMAND, n, seed=seed, fault_schedule=schedule)


def test_healthy_run_never_triggers():
    monitor = monitor_with_analytical()
    verdict = monitor.process_run(simulate())
    assert not verdict.triggered
    assert verdict.first_detection_iteration is None
    assert verdict.suspected_links() == frozenset()


def test_faulty_run_triggers_and_localizes():
    fault_link = down_link(1, 2)
    monitor = monitor_with_analytical()
    verdict = monitor.process_run(simulate(fault={fault_link: 0.1}))
    assert verdict.triggered
    assert verdict.first_detection_iteration == 0
    assert fault_link in verdict.suspected_links()


def test_suspicion_counts_accumulate():
    fault_link = down_link(1, 2)
    monitor = monitor_with_analytical()
    verdict = monitor.process_run(simulate(fault={fault_link: 0.2}, n=5))
    counts = verdict.suspicion_counts()
    assert counts.get(fault_link, 0) >= 4  # implicated nearly every iteration


def test_verdict_scores_monotone_in_drop_rate():
    scores = []
    for rate in (0.02, 0.05, 0.15):
        monitor = monitor_with_analytical()
        verdict = monitor.process_run(
            simulate(fault={down_link(0, 1): rate}, seed=3)
        )
        scores.append(verdict.max_score)
    assert scores == sorted(scores)


def test_learning_monitor_skips_warmup_then_detects():
    predictor = LearnedPredictor(warmup_iterations=2)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=0.01))

    def schedule(it):
        return {down_link(0, 1): 0.1} if it >= 3 else {}

    model = FabricModel(SPEC, mtu=256)
    records = run_iterations(model, DEMAND, 6, seed=1, fault_schedule=schedule)
    verdicts = [monitor.process_iteration(r) for r in records]
    assert verdicts[0].skipped and verdicts[1].skipped
    assert verdicts[1].learning_event is LearningEvent.BASELINE_READY
    assert not verdicts[2].skipped and not verdicts[2].triggered
    assert any(v.triggered for v in verdicts[3:])


def test_learning_monitor_suppresses_healing():
    predictor = LearnedPredictor(warmup_iterations=2)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=0.01))

    def schedule(it):
        return {down_link(0, 1): 0.15} if it < 3 else {}

    model = FabricModel(SPEC, mtu=256)
    records = run_iterations(model, DEMAND, 8, seed=2, fault_schedule=schedule)
    verdicts = [monitor.process_iteration(r) for r in records]
    healing = [v for v in verdicts if v.learning_event is LearningEvent.HEALING_DETECTED]
    assert healing and all(v.skipped for v in healing)
    # After rebaseline, the healthy fabric is quiet.
    post = [v for v in verdicts if v.learning_event is LearningEvent.REBASELINED]
    assert post
    tail = verdicts[verdicts.index(post[0]) + 1 :]
    assert tail and not any(v.triggered for v in tail)


def test_score_for_roc_caps_infinities():
    monitor = monitor_with_analytical()
    # A black-hole-like total fault on a port produces -1 deviation
    # (finite); fabricate an infinite one via an unexpected port.
    records = simulate()
    records[0][0].port_bytes[99] = 12345  # traffic on a nonexistent port
    verdict = monitor.process_run(records)
    assert score_for_roc(verdict) == 10.0


def test_iteration_verdict_exposes_results_per_leaf():
    monitor = monitor_with_analytical()
    verdict = monitor.process_iteration(simulate(n=1)[0])
    assert len(verdict.results) == SPEC.n_leaves
    assert verdict.iteration == 0


def test_skipped_verdict_has_empty_results_and_zero_score():
    """Warmup verdicts carry no detection results: max_score must fall
    back to 0.0 (the ``default=`` path), not raise on an empty max()."""
    predictor = LearnedPredictor(warmup_iterations=2)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=0.01))
    records = run_iterations(FabricModel(SPEC, mtu=256), DEMAND, 1, seed=5)
    verdict = monitor.process_iteration(records[0])
    assert verdict.skipped
    assert verdict.learning_event is LearningEvent.WARMUP
    assert verdict.results == ()
    assert verdict.localizations == ()
    assert verdict.max_score == 0.0
    assert not verdict.triggered
    assert verdict.suspected_links() == frozenset()


def test_run_verdict_score_excludes_skipped_iterations():
    """Run-level max_score only aggregates monitored iterations; a run
    that never left warmup scores 0.0 instead of raising."""
    predictor = LearnedPredictor(warmup_iterations=4)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=0.01))
    records = run_iterations(FabricModel(SPEC, mtu=256), DEMAND, 3, seed=6)
    verdict = monitor.process_run(records)
    assert all(v.skipped for v in verdict.verdicts)
    assert verdict.max_score == 0.0
    assert not verdict.triggered
    assert verdict.first_detection_iteration is None


def test_relearn_skip_path_rebaseline_iteration_is_skipped():
    """The iteration whose records *built* the replacement baseline is
    never checked against it (that would be circular): REBASELINED
    verdicts are skipped with empty results."""
    predictor = LearnedPredictor(warmup_iterations=2)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=0.01))

    def schedule(it):
        return {down_link(0, 1): 0.15} if it < 3 else {}

    records = run_iterations(
        FabricModel(SPEC, mtu=256), DEMAND, 8, seed=2, fault_schedule=schedule
    )
    verdicts = [monitor.process_iteration(r) for r in records]
    rebaselined = [
        v for v in verdicts if v.learning_event is LearningEvent.REBASELINED
    ]
    assert rebaselined
    for verdict in rebaselined:
        assert verdict.skipped
        assert verdict.results == ()
        assert verdict.max_score == 0.0
