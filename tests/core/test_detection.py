"""Tests for the threshold detector."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DetectionConfig, DetectionError, ThresholdDetector
from repro.core.prediction import PortPrediction
from repro.simnet import FlowTag, IterationRecord


def record(leaf=0, iteration=0, **port_bytes):
    ports = {int(k[1:]): v for k, v in port_bytes.items()}
    return IterationRecord(
        leaf=leaf,
        tag=FlowTag(1, iteration),
        port_bytes=ports,
        sender_bytes={(p, 0): v for p, v in ports.items()},
        start_ns=0,
        end_ns=1,
    )


def prediction(leaf=0, **port_bytes):
    ports = {int(k[1:]): float(v) for k, v in port_bytes.items()}
    return PortPrediction(
        leaf=leaf,
        port_bytes=ports,
        sender_bytes={(p, 0): v for p, v in ports.items()},
    )


def test_no_alarm_when_observation_matches():
    detector = ThresholdDetector(DetectionConfig(threshold=0.01))
    result = detector.evaluate(record(p0=1000, p1=1000), prediction(p0=1000, p1=1000))
    assert not result.triggered
    assert result.max_abs_deviation == 0.0


def test_deficit_beyond_threshold_alarms():
    detector = ThresholdDetector(DetectionConfig(threshold=0.01))
    result = detector.evaluate(record(p0=980, p1=1000), prediction(p0=1000, p1=1000))
    assert result.triggered
    (alarm,) = result.alarms
    assert alarm.spine == 0
    assert alarm.is_deficit
    assert math.isclose(alarm.deviation, -0.02)


def test_surplus_beyond_threshold_alarms_too():
    detector = ThresholdDetector(DetectionConfig(threshold=0.01))
    result = detector.evaluate(record(p0=1020, p1=1000), prediction(p0=1000, p1=1000))
    assert result.triggered
    (alarm,) = result.alarms
    assert not alarm.is_deficit


def test_deviation_exactly_at_threshold_alarms():
    """Boundary regression: the threshold is inclusive — a deviation of
    exactly ``threshold`` ("beyond 1 %" read as "at least 1 %") alarms."""
    detector = ThresholdDetector(DetectionConfig(threshold=0.02))
    result = detector.evaluate(record(p0=980, p1=1000), prediction(p0=1000, p1=1000))
    assert result.triggered
    (alarm,) = result.alarms
    assert alarm.deviation == -0.02
    # Just inside the boundary stays quiet.
    quiet = detector.evaluate(record(p0=981, p1=1000), prediction(p0=1000, p1=1000))
    assert not quiet.triggered


def test_paper_threshold_default_is_one_percent():
    assert DetectionConfig().threshold == 0.01


def test_missing_port_counts_as_total_deficit():
    detector = ThresholdDetector()
    result = detector.evaluate(record(p1=1000), prediction(p0=1000, p1=1000))
    assert result.triggered
    (alarm,) = result.alarms
    assert alarm.spine == 0
    assert alarm.deviation == -1.0


def test_unexpected_traffic_on_idle_port():
    detector = ThresholdDetector()
    result = detector.evaluate(record(p0=1000, p1=500), prediction(p0=1000))
    assert result.triggered
    (alarm,) = result.alarms
    assert alarm.spine == 1
    assert math.isinf(alarm.deviation)
    assert result.max_abs_deviation == math.inf


def test_idle_port_staying_idle_is_fine():
    detector = ThresholdDetector()
    result = detector.evaluate(record(p0=1000), prediction(p0=1000, p1=0.0))
    assert not result.triggered


def test_leaf_mismatch_rejected():
    detector = ThresholdDetector()
    with pytest.raises(DetectionError):
        detector.evaluate(record(leaf=0, p0=1), prediction(leaf=1, p0=1))


def test_config_validation():
    with pytest.raises(DetectionError):
        DetectionConfig(threshold=0.0)
    with pytest.raises(DetectionError):
        DetectionConfig(min_port_bytes=-1)


def test_deficit_alarms_filter():
    detector = ThresholdDetector(DetectionConfig(threshold=0.01))
    result = detector.evaluate(
        record(p0=900, p1=1100), prediction(p0=1000, p1=1000)
    )
    deficits = result.deficit_alarms()
    assert [a.spine for a in deficits] == [0]
    assert len(result.alarms) == 2


def test_iteration_propagated():
    detector = ThresholdDetector()
    result = detector.evaluate(record(iteration=7, p0=1), prediction(p0=1))
    assert result.iteration == 7


@settings(max_examples=60, deadline=None)
@given(
    st.floats(0.001, 0.5),
    st.floats(-0.6, 0.6),
)
def test_property_alarm_iff_deviation_exceeds_threshold(threshold, deviation):
    detector = ThresholdDetector(DetectionConfig(threshold=threshold))
    observed = 1_000_000 * (1 + deviation)
    result = detector.evaluate(
        record(p0=int(observed), p1=1_000_000),
        prediction(p0=1_000_000, p1=1_000_000),
    )
    actual_dev = abs(int(observed) - 1_000_000) / 1_000_000
    assert result.triggered == (actual_dev >= threshold)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 10**9), min_size=1, max_size=16))
def test_property_exact_match_never_alarms(volumes):
    detector = ThresholdDetector()
    ports_rec = {f"p{i}": v for i, v in enumerate(volumes)}
    result = detector.evaluate(record(**ports_rec), prediction(**ports_rec))
    assert not result.triggered
