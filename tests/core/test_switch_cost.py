"""Tests for the data-plane resource model."""

from __future__ import annotations

import pytest

from repro.core.switch_cost import (
    COUNTER_BYTES,
    CONTROL_WORDS_BYTES,
    TOFINO_STAGE_SRAM_BYTES,
    fabric_cost_report,
    leaf_switch_cost,
)
from repro.topology import ClosSpec, paper_default_spec


def test_ring_regime_counts():
    spec = paper_default_spec()
    cost = leaf_switch_cost(spec, monitored_jobs=1, senders_per_port=1)
    assert cost.detection_counters == 16
    assert cost.localization_counters == 16
    assert cost.sram_bytes == 32 * COUNTER_BYTES + 16 * CONTROL_WORDS_BYTES


def test_ring_regime_is_negligible_sram():
    cost = leaf_switch_cost(paper_default_spec())
    assert cost.fits_one_stage
    assert cost.sram_fraction_of_stage < 0.01


def test_worst_case_multi_sender_still_fits():
    spec = paper_default_spec()
    cost = leaf_switch_cost(spec, senders_per_port=spec.n_leaves - 1)
    assert cost.localization_counters == 16 * 31
    assert cost.fits_one_stage


def test_many_jobs_scale_linearly():
    spec = paper_default_spec()
    one = leaf_switch_cost(spec, monitored_jobs=1)
    ten = leaf_switch_cost(spec, monitored_jobs=10)
    assert ten.detection_counters == 10 * one.detection_counters
    assert ten.sram_bytes == 10 * one.sram_bytes


def test_large_fabric_worst_case_can_exceed_stage():
    spec = ClosSpec(n_leaves=512, n_spines=64, hosts_per_leaf=1)
    cost = leaf_switch_cost(spec, monitored_jobs=8, senders_per_port=511)
    assert not cost.fits_one_stage  # the scaling limit §5.1 sidesteps


def test_validation():
    spec = paper_default_spec()
    with pytest.raises(ValueError):
        leaf_switch_cost(spec, monitored_jobs=0)
    with pytest.raises(ValueError):
        leaf_switch_cost(spec, senders_per_port=0)
    with pytest.raises(ValueError):
        leaf_switch_cost(spec, senders_per_port=32)


def test_report_mentions_key_numbers():
    text = fabric_cost_report(paper_default_spec())
    assert "32x16" in text
    assert "counters" in text
    assert "actions per tagged packet" in text


def test_per_packet_work_is_constant():
    cost = leaf_switch_cost(paper_default_spec(), senders_per_port=31)
    assert cost.per_packet_actions == 3  # independent of state size
