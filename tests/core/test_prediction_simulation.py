"""Tests for the simulation-based predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, PredictionError, SimulationPredictor
from repro.fastsim import FabricModel
from repro.topology import ClosSpec, down_link


def setup(n_spines=4, gray=None, silent=None, disabled=frozenset()):
    spec = ClosSpec(n_leaves=4, n_spines=n_spines, hosts_per_leaf=1)
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), 400_000)
    model = FabricModel(
        spec,
        known_disabled=disabled,
        known_gray=gray or {},
        silent=silent or {},
        mtu=512,
    )
    return spec, demand, model


def test_expected_backend_matches_analytical_when_no_gray():
    spec, demand, model = setup(disabled=frozenset({down_link(0, 1)}))
    sim = SimulationPredictor(model, demand, backend="expected").predict()
    ana = AnalyticalPredictor(
        spec, demand, known_disabled=frozenset({down_link(0, 1)})
    ).predict()
    for leaf in range(4):
        sim_ports = sim.for_leaf(leaf).port_bytes
        ana_ports = ana.for_leaf(leaf).port_bytes
        assert set(sim_ports) == set(ana_ports)
        for spine, volume in ana_ports.items():
            assert np.isclose(sim_ports[spine], volume, rtol=1e-9)


def test_expected_backend_incorporates_known_gray():
    spec, demand, model = setup(gray={down_link(0, 1): 0.1})
    sim = SimulationPredictor(model, demand, backend="expected").predict()
    ana = AnalyticalPredictor(spec, demand).predict()
    # The gray-aware prediction expects *less* on the gray port.
    assert (
        sim.for_leaf(1).port_bytes[0] < ana.for_leaf(1).port_bytes[0]
    )
    # And slightly more on the healthy ports (retransmit respray).
    assert sim.for_leaf(1).port_bytes[1] > ana.for_leaf(1).port_bytes[1]


def test_predictor_never_sees_silent_faults():
    _, demand, model = setup(silent={down_link(0, 1): 0.5})
    sim = SimulationPredictor(model, demand, backend="expected").predict()
    # Prediction is built from the healthy view: even split.
    ports = sim.for_leaf(1).port_bytes
    assert np.isclose(ports[0], ports[1], rtol=1e-9)


def test_sampled_backend_close_to_expected():
    _, demand, model = setup(gray={down_link(0, 1): 0.1})
    expected = SimulationPredictor(model, demand, backend="expected").predict()
    sampled = SimulationPredictor(
        model, demand, backend="sampled", n_runs=32, seed=4
    ).predict()
    for leaf in range(4):
        for spine, volume in expected.for_leaf(leaf).port_bytes.items():
            assert np.isclose(
                sampled.for_leaf(leaf).port_bytes[spine], volume, rtol=0.15
            )


def test_sampled_backend_deterministic_per_seed():
    _, demand, model = setup()
    a = SimulationPredictor(model, demand, backend="sampled", n_runs=4, seed=9)
    b = SimulationPredictor(model, demand, backend="sampled", n_runs=4, seed=9)
    for leaf in range(4):
        assert a.predict().for_leaf(leaf).port_bytes == b.predict().for_leaf(
            leaf
        ).port_bytes


def test_invalid_backend_rejected():
    _, demand, model = setup()
    with pytest.raises(PredictionError):
        SimulationPredictor(model, demand, backend="quantum")


def test_invalid_runs_rejected():
    _, demand, model = setup()
    with pytest.raises(PredictionError):
        SimulationPredictor(model, demand, backend="sampled", n_runs=0)


def test_sender_breakdown_present():
    _, demand, model = setup()
    prediction = SimulationPredictor(model, demand).predict()
    leaf1 = prediction.for_leaf(1)
    assert leaf1.sender_bytes
    total_by_sender = sum(leaf1.sender_bytes.values())
    assert np.isclose(total_by_sender, leaf1.total_bytes)
