"""Tests for the analytical threshold model, validated against the
fast simulator's actual noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
from repro.core.threshold_model import (
    ThresholdModelError,
    port_noise_sigma,
    recommend_threshold,
)
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, down_link
from repro.units import GIB


SPEC = ClosSpec(n_leaves=32, n_spines=16, hosts_per_leaf=1)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 8 * GIB)
MTU = 1024


def test_sigma_formula():
    # 1M packets over 16 spines: sqrt(16 * (15/16) / 1e6).
    sigma = port_noise_sigma(1_000_000 * MTU, 16, MTU, "random")
    assert sigma == pytest.approx(np.sqrt(15 / 1e6), rel=1e-6)


def test_sigma_shrinks_with_size_grows_with_spines():
    small = port_noise_sigma(1 * GIB, 16, MTU)
    large = port_noise_sigma(16 * GIB, 16, MTU)
    assert large < small
    few = port_noise_sigma(1 * GIB, 8, MTU)
    many = port_noise_sigma(1 * GIB, 32, MTU)
    assert few < many


def test_adaptive_sigma_far_below_random():
    random = port_noise_sigma(1 * GIB, 16, MTU, "random")
    adaptive = port_noise_sigma(1 * GIB, 16, MTU, "adaptive")
    assert adaptive < random / 100


def test_single_spine_random_noise_is_zero():
    assert port_noise_sigma(1 * GIB, 1, MTU, "random") == 0.0


def test_validation():
    with pytest.raises(ThresholdModelError):
        port_noise_sigma(0, 16, MTU)
    with pytest.raises(ThresholdModelError):
        port_noise_sigma(1 * GIB, 0, MTU)
    with pytest.raises(ThresholdModelError):
        port_noise_sigma(1 * GIB, 16, 0)
    with pytest.raises(ThresholdModelError):
        port_noise_sigma(1 * GIB, 16, MTU, "warp")
    with pytest.raises(ThresholdModelError):
        recommend_threshold(SPEC, DEMAND, MTU, 0)
    with pytest.raises(ThresholdModelError):
        recommend_threshold(SPEC, DEMAND, MTU, 5, target_fpr=0.0)


def test_recommendation_matches_paper_regime():
    """On the paper-default setup the model must land below the paper's
    1% threshold and declare >= 1.5% drops detectable — the empirical
    operating point of Fig. 5(a)."""
    rec = recommend_threshold(SPEC, DEMAND, MTU, n_iterations=5)
    assert 0.002 < rec.threshold < 0.010
    assert rec.detectable(0.015)
    assert not rec.detectable(0.003)
    assert rec.observations == 5 * 32 * 16


def test_recommended_threshold_holds_on_simulated_negatives():
    """No false alarms across simulated healthy runs at the recommended
    threshold (the model's entire purpose)."""
    rec = recommend_threshold(SPEC, DEMAND, MTU, n_iterations=5, target_fpr=0.01)
    model = FabricModel(SPEC, mtu=MTU)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, DEMAND), DetectionConfig(threshold=rec.threshold)
    )
    false_alarms = 0
    for seed in range(5):
        records = run_iterations(model, DEMAND, 5, seed=seed)
        if monitor.process_run(records).triggered:
            false_alarms += 1
    assert false_alarms == 0


def test_detectable_faults_are_detected_at_recommendation():
    rec = recommend_threshold(SPEC, DEMAND, MTU, n_iterations=5)
    drop = rec.min_detectable_drop
    fault = down_link(2, 9)
    model = FabricModel(SPEC, silent={fault: drop}, mtu=MTU)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, DEMAND), DetectionConfig(threshold=rec.threshold)
    )
    records = run_iterations(model, DEMAND, 5, seed=41)
    assert monitor.process_run(records).triggered


def test_threshold_grows_with_more_observations():
    few = recommend_threshold(SPEC, DEMAND, MTU, n_iterations=1)
    many = recommend_threshold(SPEC, DEMAND, MTU, n_iterations=50)
    assert many.threshold > few.threshold


def test_known_faults_taken_into_account():
    disabled = frozenset({down_link(0, 1)})
    rec = recommend_threshold(
        SPEC, DEMAND, MTU, n_iterations=5, known_disabled=disabled
    )
    base = recommend_threshold(SPEC, DEMAND, MTU, n_iterations=5)
    # One fewer port observed at leaf 1.
    assert rec.observations == base.observations - 5


def test_adaptive_spray_recommendation_is_tiny():
    rec = recommend_threshold(SPEC, DEMAND, MTU, n_iterations=5, spraying="adaptive")
    assert rec.threshold < 0.001
    assert rec.min_detectable_drop < 0.002
