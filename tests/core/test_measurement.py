"""Tests for measurement planning (§5.1)."""

from __future__ import annotations

import pytest

from repro.collectives import (
    DemandMatrix,
    alltoall_demand,
    locality_optimized_ring,
    ring_demand,
)
from repro.core import MeasurementError, plan_measurement, select_measured_flows
from repro.simnet import Priority
from repro.topology import ClosSpec


SPEC = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)


def test_ring_demand_measured_in_full():
    demand = ring_demand(locality_optimized_ring(4), 400)
    plan = plan_measurement(1, demand, SPEC)
    assert plan.demand == demand
    assert plan.priority is Priority.MEASURED
    assert plan.is_jitter_resilient(SPEC)


def test_alltoall_gets_flow_selection():
    demand = alltoall_demand(list(range(4)), 100)
    plan = plan_measurement(1, demand, SPEC)
    assert plan.demand != demand
    assert plan.is_jitter_resilient(SPEC)


def test_selection_covers_every_leaf_once_each_way():
    demand = alltoall_demand(list(range(4)), 100)
    selected = select_measured_flows(demand, SPEC)
    senders = [SPEC.leaf_of_host(src) for src, _dst, _ in selected.pairs()]
    receivers = [SPEC.leaf_of_host(dst) for _src, dst, _ in selected.pairs()]
    assert sorted(senders) == [0, 1, 2, 3]
    assert sorted(receivers) == [0, 1, 2, 3]


def test_selection_prefers_heavy_flows():
    demand = DemandMatrix()
    # Two choices for each leaf; the heavy cycle 0->1->0 vs light 0->1
    # alternatives.  Build a graph where a heavy perfect matching exists.
    demand.add(0, 1, 1000)
    demand.add(1, 0, 1000)
    demand.add(2, 3, 1000)
    demand.add(3, 2, 1000)
    demand.add(0, 2, 1)
    demand.add(2, 0, 1)
    selected = select_measured_flows(demand, SPEC)
    sizes = sorted(size for _, _, size in selected.pairs())
    assert sizes == [1000, 1000, 1000, 1000]


def test_selection_single_flow_per_leaf_pair():
    spec = ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=2)
    demand = DemandMatrix()
    demand.add(0, 2, 100)  # leaf0 -> leaf1
    demand.add(1, 3, 900)  # leaf0 -> leaf1 (heavier host flow)
    demand.add(2, 0, 100)  # leaf1 -> leaf0
    selected = select_measured_flows(demand, spec)
    # The heavier host flow represents the (0, 1) leaf pair.
    assert selected.get(1, 3) == 900
    assert selected.get(0, 2) == 0
    assert selected.get(2, 0) == 100


def test_unbalanced_leaves_rejected():
    demand = DemandMatrix()
    demand.add(0, 1, 10)  # leaf 0 sends, leaf 1 receives; no reverse cover
    with pytest.raises(MeasurementError):
        select_measured_flows(demand, SPEC)


def test_empty_demand_rejected():
    spec = ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=2)
    demand = DemandMatrix()
    demand.add(0, 1, 10)  # local only
    with pytest.raises(MeasurementError):
        select_measured_flows(demand, spec)


def test_plan_ids_and_priority():
    demand = ring_demand(locality_optimized_ring(4), 400)
    plan = plan_measurement(42, demand, SPEC)
    assert plan.job_id == 42
    assert plan.priority is Priority.MEASURED
