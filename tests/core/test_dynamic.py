"""Tests for dynamic-demand (AllToAll / expert-parallel) monitoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import alltoall_demand, expert_parallel_demand
from repro.core import DetectionConfig
from repro.core.dynamic import DynamicDemandMonitor
from repro.fastsim import FabricModel, simulate_iteration
from repro.simnet import FlowTag
from repro.topology import ClosSpec, down_link, up_link
from repro.units import MIB

SPEC = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)


def run_dynamic(monitor, demands, silent=None, seed=0):
    """Simulate each iteration with its own demand; monitor them."""
    rng = np.random.Generator(np.random.PCG64(seed))
    model = FabricModel(SPEC, silent=silent or {}, mtu=1024)
    verdicts = []
    for iteration, demand in enumerate(demands):
        records = simulate_iteration(
            model, demand, rng, tag=FlowTag(1, iteration)
        )
        verdicts.append(monitor.process_iteration(demand, records))
    return verdicts


def expert_demands(n, seed=0, total=1024 * MIB):
    rng = np.random.Generator(np.random.PCG64(seed))
    hosts = list(range(SPEC.n_hosts))
    return [
        expert_parallel_demand(hosts, total, rng, concentration=0.5)
        for _ in range(n)
    ]


def test_varying_demand_healthy_is_quiet():
    monitor = DynamicDemandMonitor(SPEC, config=DetectionConfig(threshold=0.01))
    demands = expert_demands(4, seed=1)
    # The demands genuinely differ between iterations.
    assert demands[0] != demands[1]
    verdicts = run_dynamic(monitor, demands, seed=1)
    assert not any(v.triggered for v in verdicts)
    assert monitor.predictions_computed == 4


def test_static_monitor_would_false_alarm_on_dynamic_demand():
    """The §7 motivation: predicting iteration k+1 from iteration k's
    demand breaks once the matrix changes."""
    from repro.core import AnalyticalPredictor, FlowPulseMonitor

    demands = expert_demands(2, seed=2)
    rng = np.random.Generator(np.random.PCG64(2))
    model = FabricModel(SPEC, mtu=1024)
    records_1 = simulate_iteration(model, demands[1], rng, tag=FlowTag(1, 1))
    stale = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, demands[0]), DetectionConfig(threshold=0.01)
    )
    verdict = stale.process_iteration(records_1)
    assert verdict.triggered  # stale prediction -> spurious alarms


def test_dynamic_fault_detected_on_down_link():
    fault = down_link(1, 3)
    monitor = DynamicDemandMonitor(SPEC, config=DetectionConfig(threshold=0.01))
    verdicts = run_dynamic(
        monitor, expert_demands(3, seed=3), silent={fault: 0.05}, seed=3
    )
    assert all(v.triggered for v in verdicts)
    suspected = frozenset().union(*(v.suspected_links() for v in verdicts))
    assert fault in suspected


def test_dynamic_fault_localized_remote_with_multi_senders():
    """AllToAll gives every port many senders, so Fig. 4's comparison
    uniquely names an upstream fault even in the dynamic case."""
    fault = up_link(2, 1)
    monitor = DynamicDemandMonitor(SPEC, config=DetectionConfig(threshold=0.01))
    demands = [alltoall_demand(list(range(SPEC.n_hosts)), 64 * MIB)] * 3
    verdicts = run_dynamic(monitor, demands, silent={fault: 0.05}, seed=4)
    assert any(v.triggered for v in verdicts)
    suspicions = [
        s
        for v in verdicts
        for loc in v.localizations
        for s in loc.suspicions
    ]
    assert suspicions
    assert {s.link for s in suspicions} == {fault}
    assert all(s.kind == "remote" for s in suspicions)


def test_known_disabled_respected():
    disabled = frozenset({down_link(0, 2), up_link(2, 0)})
    monitor = DynamicDemandMonitor(
        SPEC, known_disabled=disabled, config=DetectionConfig(threshold=0.01)
    )
    rng = np.random.Generator(np.random.PCG64(5))
    model = FabricModel(SPEC, known_disabled=disabled, mtu=1024)
    demand = alltoall_demand(list(range(SPEC.n_hosts)), 64 * MIB)
    records = simulate_iteration(model, demand, rng, tag=FlowTag(1, 0))
    verdict = monitor.process_iteration(demand, records)
    assert not verdict.triggered


def test_process_run_convenience():
    monitor = DynamicDemandMonitor(SPEC, config=DetectionConfig(threshold=0.01))
    demands = expert_demands(3, seed=6)
    rng = np.random.Generator(np.random.PCG64(6))
    model = FabricModel(SPEC, mtu=1024)
    pairs = [
        (demand, simulate_iteration(model, demand, rng, tag=FlowTag(1, i)))
        for i, demand in enumerate(demands)
    ]
    verdicts = monitor.process_run(pairs)
    assert [v.iteration for v in verdicts] == [0, 1, 2]
