"""Tests for the CUSUM sequential detector."""

from __future__ import annotations

import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
from repro.core.sequential import (
    CusumConfig,
    CusumMonitor,
    SequentialError,
)
from repro.core.threshold_model import port_noise_sigma
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, down_link
from repro.units import GIB

SPEC = ClosSpec(n_leaves=32, n_spines=16, hosts_per_leaf=1)
TOTAL = 8 * GIB
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), TOTAL)
MTU = 1024
SIGMA = port_noise_sigma(TOTAL - TOTAL // SPEC.n_leaves, SPEC.n_spines, MTU)


def make_monitor():
    return CusumMonitor(
        predictor=AnalyticalPredictor(SPEC, DEMAND),
        config=CusumConfig.from_noise(SIGMA),
    )


def simulate(silent, n, seed):
    model = FabricModel(SPEC, silent=silent, mtu=MTU)
    return run_iterations(model, DEMAND, n, seed=seed)


def test_config_validation():
    with pytest.raises(SequentialError):
        CusumConfig(drift=-0.1, decision=1.0)
    with pytest.raises(SequentialError):
        CusumConfig(drift=0.1, decision=0.0)
    with pytest.raises(SequentialError):
        CusumConfig.from_noise(-1.0)


def test_expected_latency_formula():
    config = CusumConfig(drift=0.002, decision=0.01)
    assert config.iterations_to_detect(0.004) == pytest.approx(5.0)
    assert config.iterations_to_detect(0.001) == float("inf")


def test_healthy_run_accumulates_nothing():
    monitor = make_monitor()
    verdicts = monitor.process_run(simulate({}, 20, seed=201))
    assert not any(v.triggered for v in verdicts)
    # Accumulated statistics stay far below the decision level.
    assert all(s < monitor.config.decision / 2 for s in monitor._stats.values())


def test_subthreshold_fault_caught_sequentially():
    """A 0.5% drop is invisible to the 1% instantaneous threshold (the
    paper's stated blind spot) but accumulates past the CUSUM decision
    level within a few tens of iterations."""
    fault = down_link(3, 17)
    records = simulate({fault: 0.005}, 40, seed=202)

    # Instantaneous detector: blind.
    instant = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, DEMAND), DetectionConfig(threshold=0.01)
    )
    assert not instant.process_run(records).triggered

    # Sequential detector: catches it, on the right port.
    monitor = make_monitor()
    verdicts = monitor.process_run(records)
    triggered = [v for v in verdicts if v.triggered]
    assert triggered
    alarm = triggered[0].alarms[0]
    assert (alarm.leaf, alarm.spine) == (17, 3)
    # Latency is in the regime the formula predicts.
    deficit = 0.005 * (1 - 1 / SPEC.n_spines)
    expected = monitor.config.iterations_to_detect(deficit)
    assert triggered[0].iteration <= 3 * expected


def test_larger_fault_detected_faster():
    fault = down_link(5, 9)

    def first_alarm(rate, seed):
        monitor = make_monitor()
        verdicts = monitor.process_run(simulate({fault: rate}, 40, seed=seed))
        for v in verdicts:
            if v.triggered:
                return v.iteration
        return None

    slow = first_alarm(0.005, seed=203)
    fast = first_alarm(0.010, seed=203)
    assert fast is not None and slow is not None
    assert fast < slow


def test_reset_clears_state():
    monitor = make_monitor()
    monitor.process_run(simulate({down_link(1, 2): 0.01}, 5, seed=204))
    assert monitor._stats
    monitor.reset(leaf=2)
    assert not any(k[0] == 2 for k in monitor._stats)
    monitor.reset()
    assert not monitor._stats


def test_alarm_reports_accumulation_span():
    fault = down_link(2, 11)
    monitor = make_monitor()
    verdicts = monitor.process_run(simulate({fault: 0.01}, 30, seed=205))
    triggered = [v for v in verdicts if v.triggered]
    assert triggered
    alarm = triggered[0].alarms[0]
    assert alarm.iterations_accumulated >= 2
    assert alarm.statistic > monitor.config.decision
