"""Tests for the analytical d/(s-f) load model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import DemandMatrix, locality_optimized_ring, ring_demand
from repro.core import AnalyticalPredictor, PredictionError
from repro.topology import ClosSpec, down_link, up_link


def ring_setup(n_leaves=4, n_spines=2, total=400_000):
    spec = ClosSpec(n_leaves=n_leaves, n_spines=n_spines, hosts_per_leaf=1)
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), total)
    return spec, demand


def test_even_split_without_faults():
    spec, demand = ring_setup()
    prediction = AnalyticalPredictor(spec, demand).predict()
    inbound = 400_000 - 400_000 // 4
    for leaf in range(4):
        ports = prediction.for_leaf(leaf).port_bytes
        assert ports == {0: inbound / 2, 1: inbound / 2}


def test_d_over_s_minus_f_with_down_fault():
    spec, demand = ring_setup(n_spines=4)
    dead = down_link(0, 1)  # spine 0 cannot reach leaf 1
    prediction = AnalyticalPredictor(
        spec, demand, known_disabled=frozenset({dead})
    ).predict()
    inbound = 400_000 - 400_000 // 4
    leaf1 = prediction.for_leaf(1).port_bytes
    assert 0 not in leaf1
    for spine in (1, 2, 3):
        assert np.isclose(leaf1[spine], inbound / 3)  # d / (s - f)
    # Other leaves unaffected.
    assert np.isclose(prediction.for_leaf(2).port_bytes[0], inbound / 4)


def test_up_fault_affects_only_that_senders_flows():
    spec, demand = ring_setup(n_spines=4)
    dead = up_link(0, 2)  # leaf 0 cannot reach spine 2
    prediction = AnalyticalPredictor(
        spec, demand, known_disabled=frozenset({dead})
    ).predict()
    inbound = 400_000 - 400_000 // 4
    # Leaf 1 receives from leaf 0 only: its spine-2 port sees nothing.
    leaf1 = prediction.for_leaf(1).port_bytes
    assert 2 not in leaf1
    assert np.isclose(leaf1[0], inbound / 3)
    # Leaf 2 receives from leaf 1, which can still use spine 2.
    assert np.isclose(prediction.for_leaf(2).port_bytes[2], inbound / 4)


def test_sender_breakdown_matches_ports():
    spec, demand = ring_setup(n_spines=4)
    prediction = AnalyticalPredictor(spec, demand).predict()
    for leaf in range(spec.n_leaves):
        port = prediction.for_leaf(leaf)
        for spine, volume in port.port_bytes.items():
            senders = sum(
                v for (s, _src), v in port.sender_bytes.items() if s == spine
            )
            assert np.isclose(senders, volume)


def test_total_prediction_equals_nonlocal_demand():
    spec, demand = ring_setup(n_leaves=8, n_spines=4)
    prediction = AnalyticalPredictor(spec, demand).predict()
    assert np.isclose(prediction.total_bytes, demand.nonlocal_bytes(spec))


def test_local_traffic_excluded():
    spec = ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=2)
    demand = DemandMatrix()
    demand.add(0, 1, 999)  # same leaf
    demand.add(0, 2, 100)  # crosses fabric
    prediction = AnalyticalPredictor(spec, demand).predict()
    assert np.isclose(prediction.total_bytes, 100)


def test_multi_sender_demand():
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    demand = DemandMatrix()
    demand.add(0, 3, 100)
    demand.add(1, 3, 300)
    prediction = AnalyticalPredictor(spec, demand).predict()
    leaf3 = prediction.for_leaf(3)
    assert np.isclose(leaf3.port_bytes[0], 200)
    assert np.isclose(leaf3.sender_bytes[(0, 0)], 50)
    assert np.isclose(leaf3.sender_bytes[(0, 1)], 150)


def test_expected_ports_reflect_faults():
    spec, demand = ring_setup(n_spines=3)
    prediction = AnalyticalPredictor(
        spec, demand, known_disabled=frozenset({down_link(1, 2)})
    ).predict()
    assert prediction.for_leaf(2).expected_ports() == frozenset({0, 2})


def test_prediction_misorder_detected():
    spec, demand = ring_setup()
    prediction = AnalyticalPredictor(spec, demand).predict()
    with pytest.raises(PredictionError):
        prediction.for_leaf(1).leaf == 1 and prediction.per_leaf[0].leaf == 0 and (
            type(prediction)(per_leaf=prediction.per_leaf[::-1]).for_leaf(0)
        )


def test_stateless_update_is_noop():
    spec, demand = ring_setup()
    predictor = AnalyticalPredictor(spec, demand)
    from repro.core import LearningEvent

    assert predictor.update([]) is LearningEvent.NONE
    assert predictor.ready


@settings(max_examples=30, deadline=None)
@given(
    st.integers(3, 10),
    st.integers(2, 6),
    st.integers(100, 10**6),
)
def test_property_prediction_conserves_demand(n_leaves, n_spines, total):
    spec = ClosSpec(n_leaves=n_leaves, n_spines=n_spines, hosts_per_leaf=1)
    if total < n_leaves:
        total = n_leaves
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), total)
    prediction = AnalyticalPredictor(spec, demand).predict()
    assert np.isclose(prediction.total_bytes, demand.nonlocal_bytes(spec))
    # Per-leaf: prediction equals the leaf's inbound non-local demand.
    pair_bytes = demand.leaf_pairs(spec)
    for leaf in range(n_leaves):
        inbound = sum(v for (src, dst), v in pair_bytes.items() if dst == leaf)
        assert np.isclose(prediction.for_leaf(leaf).total_bytes, inbound)
