"""Tests for the remediation engine and confirmation policy."""

from __future__ import annotations

import pytest

from repro.core import (
    ConfirmationPolicy,
    IterationVerdict,
    LearningEvent,
    RemediationEngine,
    RemediationError,
    cable_links,
    cable_of,
)
from repro.core.detection import DetectionResult, PortDeviation
from repro.core.localization import LinkSuspicion, LocalizationResult
from repro.topology import down_link, up_link


def verdict_with(iteration, links, skipped=False):
    """Build an IterationVerdict implicating the given links."""
    suspicions = tuple(
        LinkSuspicion(
            link=link,
            kind="local",
            leaf=0,
            spine=0,
            affected_senders=(1,),
            deviation=-0.05,
        )
        for link in links
    )
    localization = LocalizationResult(leaf=0, iteration=iteration, suspicions=suspicions)
    deviation = PortDeviation(leaf=0, spine=0, predicted=1.0, observed=0.9, deviation=-0.1)
    result = DetectionResult(
        leaf=0,
        iteration=iteration,
        deviations=(deviation,),
        alarms=(deviation,) if links else (),
    )
    return IterationVerdict(
        iteration=iteration,
        learning_event=LearningEvent.NONE,
        skipped=skipped,
        results=(result,),
        localizations=(localization,) if links else (),
    )


def test_cable_normalization():
    assert cable_of(up_link(3, 7)) == (3, 7)
    assert cable_of(down_link(7, 3)) == (3, 7)
    assert cable_links((3, 7)) == frozenset({up_link(3, 7), down_link(7, 3)})


def test_policy_validation():
    with pytest.raises(RemediationError):
        ConfirmationPolicy(confirm_after=0)
    with pytest.raises(RemediationError):
        ConfirmationPolicy(confirm_after=3, window=2)


def test_single_implication_not_confirmed():
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=2, window=4))
    action = engine.observe(verdict_with(0, [down_link(1, 0)]))
    assert action is None
    assert engine.actions == []


def test_repeated_implication_confirms_and_disables_both_directions():
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=2, window=4))
    engine.observe(verdict_with(0, [down_link(1, 0)]))
    action = engine.observe(verdict_with(1, [down_link(1, 0)]))
    assert action is not None
    assert action.cables == frozenset({(0, 1)})
    assert action.disabled_links == frozenset({up_link(0, 1), down_link(1, 0)})
    assert action.iteration == 1


def test_confirmed_cable_not_reconfirmed():
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=2, window=4))
    link = down_link(1, 0)
    engine.observe(verdict_with(0, [link]))
    assert engine.observe(verdict_with(1, [link])) is not None
    assert engine.observe(verdict_with(2, [link])) is None
    assert len(engine.actions) == 1


def test_window_forgets_stale_evidence():
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=2, window=2))
    link = down_link(1, 0)
    engine.observe(verdict_with(0, [link]))
    engine.observe(verdict_with(1, []))  # evidence ages out of the window
    engine.observe(verdict_with(2, []))
    assert engine.observe(verdict_with(3, [link])) is None


def test_skipped_iterations_ignored():
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=1, window=1))
    action = engine.observe(verdict_with(0, [down_link(1, 0)], skipped=True))
    assert action is None


def test_up_and_down_suspicions_count_as_one_cable():
    # The ambiguous single-sender case implicates both directions of
    # different cables; each cable accumulates evidence independently.
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=2, window=4))
    links = [down_link(1, 0), up_link(5, 1)]
    engine.observe(verdict_with(0, links))
    action = engine.observe(verdict_with(1, links))
    assert action is not None
    assert action.cables == frozenset({(0, 1), (5, 1)})
    assert len(action.disabled_links) == 4


def test_total_disabled_links_accumulates():
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=1, window=1))
    engine.observe(verdict_with(0, [down_link(1, 0)]))
    engine.observe(verdict_with(1, [down_link(2, 3)]))
    assert engine.total_disabled_links == frozenset(
        {up_link(0, 1), down_link(1, 0), up_link(3, 2), down_link(2, 3)}
    )


def test_reset_history():
    engine = RemediationEngine(ConfirmationPolicy(confirm_after=2, window=4))
    engine.observe(verdict_with(0, [down_link(1, 0)]))
    engine.reset_history()
    assert engine.observe(verdict_with(1, [down_link(1, 0)])) is None
