"""Columnar segments and vectorized block scoring.

The load-bearing property is golden parity: for any block composition
(segments or raw record lists, any chunking, any predictor),
``process_block`` must produce verdicts bit-identical to feeding the
same iterations one at a time through ``process_iteration``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentConfig, build_trial, demand_for, make_predictor
from repro.core.blocks import BlockError, IterationSegment, segments_from_run
from repro.core.detection import DetectionConfig
from repro.core.monitor import FlowPulseMonitor
from repro.fastsim.model import run_iterations
from repro.simnet.counters import IterationRecord
from repro.simnet.packet import FlowTag


def make_record(leaf=0, iteration=0, port_bytes=None, sender_bytes=None):
    return IterationRecord(
        leaf=leaf,
        tag=FlowTag(job_id=7, iteration=iteration),
        port_bytes=port_bytes if port_bytes is not None else {0: 1000, 1: 2000},
        sender_bytes=sender_bytes if sender_bytes is not None else {(0, 1): 400},
        start_ns=10,
        end_ns=50,
    )


def experiment(**overrides) -> ExperimentConfig:
    defaults = dict(
        n_leaves=6,
        n_spines=3,
        collective_bytes=1 << 30,
        n_iterations=10,
        fault_start_iteration=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run_records(config: ExperimentConfig, faulted=True, trial=0):
    setup = build_trial(config, base_seed=3, trial=trial)

    def schedule(iteration):
        if faulted and iteration >= config.fault_start_iteration:
            return {setup.fault_link: config.drop_rate}
        return {}

    iterations = run_iterations(
        setup.model,
        demand_for(config),
        config.n_iterations,
        seed=11,
        job_id=config.job_id,
        fault_schedule=schedule,
    )
    return setup, iterations


def fresh_monitor(config: ExperimentConfig, setup) -> FlowPulseMonitor:
    return FlowPulseMonitor(
        make_predictor(config, setup), DetectionConfig(threshold=config.threshold)
    )


# ----------------------------------------------------------------------
# Segment construction and materialization
# ----------------------------------------------------------------------
def test_segment_round_trips_records():
    records = [make_record(leaf=leaf) for leaf in (2, 0, 1)]
    segment = IterationSegment.from_records(records)
    assert segment.n_records == 3
    assert segment.records() == records  # order preserved
    assert [int(leaf) for leaf in segment.leaves] == [2, 0, 1]


def test_segment_lazy_record_materialization():
    records = [
        make_record(leaf=0, port_bytes={3: 10, 1: 20.5}, sender_bytes={(1, 2): 7})
    ]
    segment = IterationSegment.from_records(records)
    segment._records = None  # force rebuild from columns (the wire path)
    rebuilt = segment.record(0)
    assert rebuilt == records[0]
    # exact value types survive the raw/flag columns
    assert type(rebuilt.port_bytes[3]) is int
    assert type(rebuilt.port_bytes[1]) is float


def test_segment_rejects_empty_and_mixed_tags():
    with pytest.raises(BlockError, match="empty"):
        IterationSegment.from_records([])
    with pytest.raises(BlockError, match="mixed tags"):
        IterationSegment.from_records(
            [make_record(iteration=0), make_record(leaf=1, iteration=1)]
        )


def test_segment_rejects_out_of_range_ints():
    with pytest.raises(BlockError, match="64-bit"):
        IterationSegment.from_records([make_record(port_bytes={0: 2**70})])


def test_port_pattern_uniform():
    records = [make_record(leaf=leaf, port_bytes={2: 5, 0: 7}) for leaf in range(3)]
    segment = IterationSegment.from_records(records)
    assert list(segment.port_pattern()) == [0, 2]  # sorted within record
    matrix = segment.port_value_matrix()
    assert matrix.shape == (3, 2)
    assert matrix.dtype == np.float64
    assert matrix[0].tolist() == [7.0, 5.0]


def test_port_pattern_irregular_is_none():
    records = [
        make_record(leaf=0, port_bytes={0: 1, 1: 2}),
        make_record(leaf=1, port_bytes={0: 1, 2: 2}),  # different spine set
    ]
    segment = IterationSegment.from_records(records)
    assert segment.port_pattern() is None
    with pytest.raises(BlockError, match="pattern"):
        segment.port_value_matrix()


def test_segments_from_run():
    config = experiment(n_iterations=4)
    _setup, iterations = run_records(config)
    segments = segments_from_run(iterations)
    assert len(segments) == 4
    assert all(s.n_records == config.n_leaves for s in segments)
    assert [s.iteration for s in segments] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# process_block golden parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("predictor", ["analytical", "simulation", "learned"])
@pytest.mark.parametrize("chunk", [1, 3, 10])
def test_process_block_parity_segments(predictor, chunk):
    config = experiment(predictor=predictor)
    setup, iterations = run_records(config)
    reference_monitor = fresh_monitor(config, setup)
    reference = [reference_monitor.process_iteration(list(r)) for r in iterations]
    assert any(v.triggered for v in reference)  # the fault is visible

    block_monitor = fresh_monitor(config, setup)
    segments = segments_from_run(iterations)
    for segment in segments:
        segment._records = None  # force the columnar path end to end
    got = []
    for start in range(0, len(segments), chunk):
        got.extend(block_monitor.process_block(segments[start : start + chunk]))
    assert got == reference  # bit-identical IterationVerdicts


def test_process_block_parity_record_lists():
    """Raw record lists (the v1 worker path) take the scalar oracle
    inside process_block and still match exactly."""
    config = experiment()
    setup, iterations = run_records(config)
    reference_monitor = fresh_monitor(config, setup)
    reference = [reference_monitor.process_iteration(list(r)) for r in iterations]

    block_monitor = fresh_monitor(config, setup)
    got = block_monitor.process_block([list(r) for r in iterations])
    assert got == reference


def test_process_block_parity_mixed_entries():
    config = experiment()
    setup, iterations = run_records(config)
    reference_monitor = fresh_monitor(config, setup)
    reference = [reference_monitor.process_iteration(list(r)) for r in iterations]

    block_monitor = fresh_monitor(config, setup)
    entries = [
        IterationSegment.from_records(list(r)) if index % 2 == 0 else list(r)
        for index, r in enumerate(iterations)
    ]
    assert block_monitor.process_block(entries) == reference


def test_process_block_empty():
    config = experiment()
    setup, _iterations = run_records(config)
    assert fresh_monitor(config, setup).process_block([]) == []


def test_process_block_healthy_quiet_path_is_dense():
    """A healthy run is the vectorized fast path end to end: every
    verdict quiet, none skipped after warmup, and still bit-identical."""
    config = experiment()
    setup, iterations = run_records(config, faulted=False)
    reference_monitor = fresh_monitor(config, setup)
    reference = [reference_monitor.process_iteration(list(r)) for r in iterations]
    assert not any(v.triggered for v in reference)

    block_monitor = fresh_monitor(config, setup)
    segments = segments_from_run(iterations)
    for segment in segments:
        segment._records = None
    got = block_monitor.process_block(segments)
    assert got == reference
    # lazy details (ports/deviations) must match too, not just scores
    for ours, ref in zip(got, reference):
        for a, b in zip(ours.results, ref.results):
            assert a.leaf == b.leaf
            assert a.deviations == b.deviations
