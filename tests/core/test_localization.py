"""Tests for the Fig. 4 localization rule."""

from __future__ import annotations

import pytest

from repro.core import (
    DetectionConfig,
    Localizer,
    ThresholdDetector,
)
from repro.core.prediction import PortPrediction
from repro.simnet import FlowTag, IterationRecord
from repro.topology import down_link, up_link


def build(leaf, observed_by_sender, predicted_by_sender):
    """observed/predicted: {(spine, src_leaf): bytes}."""
    obs_ports, pred_ports = {}, {}
    for (spine, _src), v in observed_by_sender.items():
        obs_ports[spine] = obs_ports.get(spine, 0) + v
    for (spine, _src), v in predicted_by_sender.items():
        pred_ports[spine] = pred_ports.get(spine, 0.0) + v
    record = IterationRecord(
        leaf=leaf,
        tag=FlowTag(1, 0),
        port_bytes=obs_ports,
        sender_bytes=dict(observed_by_sender),
        start_ns=0,
        end_ns=1,
    )
    prediction = PortPrediction(
        leaf=leaf,
        port_bytes=pred_ports,
        sender_bytes={k: float(v) for k, v in predicted_by_sender.items()},
    )
    return record, prediction


def localize(record, prediction, threshold=0.01):
    detector = ThresholdDetector(DetectionConfig(threshold=threshold))
    result = detector.evaluate(record, prediction)
    return Localizer(sender_threshold=threshold).localize(record, prediction, result)


def test_all_senders_affected_blames_local_link():
    # Both senders through spine 1 are down 10%: local link S1->L2.
    predicted = {(0, 0): 1000, (1, 0): 1000, (0, 3): 1000, (1, 3): 1000}
    observed = {(0, 0): 1000, (1, 0): 900, (0, 3): 1000, (1, 3): 900}
    record, prediction = build(2, observed, predicted)
    result = localize(record, prediction)
    assert result.suspected_links() == frozenset({down_link(1, 2)})
    (suspicion,) = result.suspicions
    assert suspicion.kind == "local"
    assert set(suspicion.affected_senders) == {0, 3}


def test_single_sender_affected_blames_remote_uplink():
    # Fig. 4: only sender leaf 0's traffic via spine 1 is depressed.
    predicted = {(0, 0): 1000, (1, 0): 1000, (0, 3): 1000, (1, 3): 1000}
    observed = {(0, 0): 1000, (1, 0): 850, (0, 3): 1000, (1, 3): 1000}
    record, prediction = build(2, observed, predicted)
    result = localize(record, prediction, threshold=0.02)
    assert result.suspected_links() == frozenset({up_link(0, 1)})
    (suspicion,) = result.suspicions
    assert suspicion.kind == "remote"
    assert suspicion.affected_senders == (0,)


def test_two_of_three_senders_affected_blames_both_remotes():
    predicted = {(0, s): 1000 for s in (1, 2, 3)}
    observed = {(0, 1): 800, (0, 2): 820, (0, 3): 1000}
    record, prediction = build(0, observed, predicted)
    result = localize(record, prediction, threshold=0.05)
    assert result.suspected_links() == frozenset({up_link(1, 0), up_link(2, 0)})
    assert all(s.kind == "remote" for s in result.suspicions)


def test_no_alarm_no_suspicion():
    predicted = {(0, 0): 1000, (1, 0): 1000}
    record, prediction = build(2, {k: int(v) for k, v in predicted.items()}, predicted)
    result = localize(record, prediction)
    assert result.suspicions == ()


def test_surplus_alarms_not_localized():
    # Retransmit overflow elsewhere shows as surplus; only deficits are
    # attributed to links.
    predicted = {(0, 0): 1000, (1, 0): 1000}
    observed = {(0, 0): 1100, (1, 0): 1000}
    record, prediction = build(2, observed, predicted)
    result = localize(record, prediction, threshold=0.05)
    assert result.suspicions == ()


def test_thin_spread_deficit_defaults_to_local():
    # Port-level deficit present, but no single sender crosses the
    # per-sender threshold: blame the shared local link.
    predicted = {(0, s): 1000 for s in (1, 2, 3)}
    observed = {(0, 1): 950, (0, 2): 950, (0, 3): 950}
    record, prediction = build(0, observed, predicted)
    # Port deficit = 5% > 3% threshold; per-sender = 5% > threshold too,
    # so all three are affected -> local.
    result = localize(record, prediction, threshold=0.03)
    (suspicion,) = result.suspicions
    assert suspicion.kind == "local"
    assert suspicion.link == down_link(0, 0)


def test_multiple_ports_localized_independently():
    predicted = {(0, 1): 1000, (1, 1): 1000}
    observed = {(0, 1): 800, (1, 1): 800}
    record, prediction = build(3, observed, predicted)
    result = localize(record, prediction, threshold=0.05)
    # Single sender on each port: each deficit narrows to the two
    # candidate cables of that port's path.
    assert result.suspected_links() == frozenset(
        {down_link(0, 3), down_link(1, 3), up_link(1, 0), up_link(1, 1)}
    )


def test_single_sender_port_yields_both_candidate_cables():
    """With one sender per port (the ring case), Fig. 4's sender
    comparison cannot disambiguate: the suspicion set must contain both
    the local downstream link and the sender's upstream link."""
    predicted = {(0, 2): 1000, (1, 2): 1000}
    observed = {(0, 2): 890, (1, 2): 1000}
    record, prediction = build(3, observed, predicted)
    result = localize(record, prediction, threshold=0.05)
    assert result.suspected_links() == frozenset(
        {down_link(0, 3), up_link(2, 0)}
    )
    kinds = {s.kind for s in result.suspicions}
    assert kinds == {"local", "remote"}
    assert all(s.spine == 0 for s in result.suspicions)


def test_sender_threshold_validation():
    with pytest.raises(ValueError):
        Localizer(sender_threshold=0.0)


def test_localization_result_metadata():
    predicted = {(0, 0): 1000}
    observed = {(0, 0): 500}
    record, prediction = build(5, observed, predicted)
    result = localize(record, prediction)
    assert result.leaf == 5
    assert result.iteration == 0
    assert result.suspicions[0].deviation < 0
