"""Tests for ROC computation and threshold calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CalibrationError,
    auc,
    calibrate_threshold,
    classify,
    roc_curve,
    separating_interval,
)


POS = [0.02, 0.03, 0.05, 0.04]
NEG = [0.002, 0.004, 0.006, 0.005]


def test_classify_threshold_strict():
    decisions = classify([0.01, 0.02, 0.005], threshold=0.01)
    assert list(decisions) == [False, True, False]


def test_roc_perfect_point():
    points = roc_curve(POS, NEG, thresholds=[0.01])
    (point,) = points
    assert point.perfect
    assert point.fpr == 0.0 and point.tpr == 1.0 and point.fnr == 0.0


def test_roc_too_low_threshold_has_false_positives():
    (point,) = roc_curve(POS, NEG, thresholds=[0.003])
    assert point.fpr > 0.0
    assert point.tpr == 1.0


def test_roc_too_high_threshold_misses():
    (point,) = roc_curve(POS, NEG, thresholds=[0.045])
    assert point.fpr == 0.0
    assert point.tpr == 0.25


def test_roc_requires_trials():
    with pytest.raises(CalibrationError):
        roc_curve([], NEG, [0.01])
    with pytest.raises(CalibrationError):
        roc_curve(POS, [], [0.01])
    with pytest.raises(CalibrationError):
        roc_curve(POS, NEG, [0.0])


def test_auc_perfectly_separable_is_one():
    points = roc_curve(POS, NEG, thresholds=np.linspace(0.001, 0.06, 30))
    assert auc(points) == pytest.approx(1.0, abs=0.02)


def test_auc_random_scores_is_half():
    rng = np.random.Generator(np.random.PCG64(0))
    pos = rng.random(2000)
    neg = rng.random(2000)
    points = roc_curve(pos, neg, thresholds=np.linspace(0.01, 0.99, 50))
    assert auc(points) == pytest.approx(0.5, abs=0.05)


def test_auc_empty_rejected():
    with pytest.raises(CalibrationError):
        auc([])


def test_separating_interval_exists():
    interval = separating_interval(POS, NEG)
    assert interval == (max(NEG), min(POS))
    low, high = interval
    (point,) = roc_curve(POS, NEG, thresholds=[(low + high) / 2])
    assert point.perfect


def test_separating_interval_absent_when_overlap():
    assert separating_interval([0.01, 0.05], [0.02, 0.001]) is None


def test_paper_threshold_separates_default_condition():
    """The headline condition: 1% threshold lies inside the separating
    interval when positives sit at ~1.4% and negatives below ~0.5%."""
    interval = separating_interval([0.014, 0.015, 0.0145], [0.004, 0.005, 0.0048])
    low, high = interval
    assert low < 0.01 < high


def test_calibrate_threshold_from_negatives():
    threshold = calibrate_threshold(NEG, safety_factor=1.5)
    assert threshold == pytest.approx(max(NEG) * 1.5)
    assert all(~classify(NEG, threshold))


def test_calibrate_threshold_quantile():
    threshold = calibrate_threshold(NEG, safety_factor=1.0, quantile=0.5)
    assert threshold == pytest.approx(float(np.quantile(NEG, 0.5)))


def test_calibrate_threshold_zero_noise_falls_back_to_paper_default():
    assert calibrate_threshold([0.0, 0.0]) == 0.01


def test_calibrate_threshold_validation():
    with pytest.raises(CalibrationError):
        calibrate_threshold([])
    with pytest.raises(CalibrationError):
        calibrate_threshold(NEG, safety_factor=0.5)
    with pytest.raises(CalibrationError):
        calibrate_threshold(NEG, quantile=0.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
    st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
    st.floats(0.001, 1.0),
)
def test_property_rates_are_probabilities(pos, neg, threshold):
    (point,) = roc_curve(pos, neg, thresholds=[threshold])
    assert 0.0 <= point.fpr <= 1.0
    assert 0.0 <= point.tpr <= 1.0
    assert point.fnr == pytest.approx(1.0 - point.tpr)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0.0, 1.0), min_size=2, max_size=50),
    st.lists(st.floats(0.0, 1.0), min_size=2, max_size=50),
)
def test_property_tpr_fpr_monotone_in_threshold(pos, neg):
    points = roc_curve(pos, neg, thresholds=[0.1, 0.2, 0.4, 0.8])
    for a, b in zip(points, points[1:]):
        assert b.tpr <= a.tpr
        assert b.fpr <= a.fpr
