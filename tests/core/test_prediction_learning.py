"""Tests for the learning predictor and its healing rebaseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import LearnedPredictor, LearningEvent, PredictionError, imbalance
from repro.fastsim import FabricModel, run_iterations
from repro.topology import ClosSpec, down_link


SPEC = ClosSpec(n_leaves=4, n_spines=4, hosts_per_leaf=1)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 4_000_000)


def records_with(fault_schedule, n, seed=0):
    model = FabricModel(SPEC, mtu=256)
    return run_iterations(model, DEMAND, n, seed=seed, fault_schedule=fault_schedule)


def test_imbalance_zero_for_even_split():
    assert imbalance([100.0, 100.0, 100.0]) == 0.0


def test_imbalance_grows_with_skew():
    assert imbalance([50.0, 100.0, 150.0]) > imbalance([90.0, 100.0, 110.0])


def test_imbalance_degenerate_inputs():
    assert imbalance([]) == 0.0
    assert imbalance([100.0]) == 0.0
    assert imbalance([0.0, 0.0]) == 0.0


def test_warmup_then_ready():
    predictor = LearnedPredictor(warmup_iterations=3)
    runs = records_with(lambda it: {}, 4)
    assert predictor.update(runs[0]) is LearningEvent.WARMUP
    assert not predictor.ready
    assert predictor.update(runs[1]) is LearningEvent.WARMUP
    assert predictor.update(runs[2]) is LearningEvent.BASELINE_READY
    assert predictor.ready
    assert predictor.update(runs[3]) is LearningEvent.NONE


def test_predict_before_ready_raises():
    with pytest.raises(PredictionError):
        LearnedPredictor().predict()


def test_baseline_is_mean_of_warmup():
    predictor = LearnedPredictor(warmup_iterations=2)
    runs = records_with(lambda it: {}, 2)
    for records in runs:
        predictor.update(records)
    prediction = predictor.predict()
    for leaf in range(SPEC.n_leaves):
        for spine in runs[0][leaf].port_bytes:
            mean = (
                runs[0][leaf].port_bytes[spine] + runs[1][leaf].port_bytes[spine]
            ) / 2
            assert np.isclose(prediction.for_leaf(leaf).port_bytes[spine], mean)


def test_baseline_reflects_steady_fault():
    """A fault present throughout warmup is learned as 'normal' — the
    caveat the paper's Fig. 3 narrative starts from."""
    fault = {down_link(0, 1): 0.2}
    predictor = LearnedPredictor(warmup_iterations=3)
    runs = records_with(lambda it: fault, 3)
    for records in runs:
        predictor.update(records)
    prediction = predictor.predict()
    ports = prediction.for_leaf(1).port_bytes
    assert ports[0] < ports[1] * 0.9  # the deficit is baked in


def test_healing_triggers_rebaseline():
    """Fault active during warmup, heals at iteration 3: the predictor
    must notice the re-balancing, relearn, and the new baseline must be
    even again (Fig. 3)."""
    fault = {down_link(0, 1): 0.2}

    def schedule(iteration):
        return fault if iteration < 3 else {}

    predictor = LearnedPredictor(warmup_iterations=3)
    runs = records_with(schedule, 8)
    events = [predictor.update(records) for records in runs]
    assert events[:3] == [
        LearningEvent.WARMUP,
        LearningEvent.WARMUP,
        LearningEvent.BASELINE_READY,
    ]
    assert events[3] is LearningEvent.HEALING_DETECTED
    assert LearningEvent.REBASELINED in events[4:]
    # The adopted baseline is the healed, balanced one.
    ports = predictor.predict().for_leaf(1).port_bytes
    values = list(ports.values())
    assert imbalance(values) < 0.05
    assert len(predictor.baseline_history) == 2


def test_new_fault_is_not_mistaken_for_healing():
    """A new fault makes the distribution *less* even: the predictor
    must hold its baseline (detection handles the alarm)."""

    def schedule(iteration):
        return {down_link(0, 1): 0.2} if iteration >= 3 else {}

    predictor = LearnedPredictor(warmup_iterations=3)
    runs = records_with(schedule, 6)
    events = [predictor.update(records) for records in runs]
    assert events[3:] == [LearningEvent.NONE] * 3
    assert len(predictor.baseline_history) == 1


def test_validation():
    with pytest.raises(PredictionError):
        LearnedPredictor(warmup_iterations=0)
    with pytest.raises(PredictionError):
        LearnedPredictor(deviation_trigger=0)
    with pytest.raises(PredictionError):
        LearnedPredictor(balance_margin=-0.1)


def test_sender_breakdown_learned_too():
    predictor = LearnedPredictor(warmup_iterations=2)
    for records in records_with(lambda it: {}, 2):
        predictor.update(records)
    leaf1 = predictor.predict().for_leaf(1)
    assert leaf1.sender_bytes
    assert np.isclose(sum(leaf1.sender_bytes.values()), leaf1.total_bytes)
