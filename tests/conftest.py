"""Shared fixtures for the FlowPulse reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.topology import ClosSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test randomness."""
    return np.random.Generator(np.random.PCG64(1234))


@pytest.fixture
def small_spec() -> ClosSpec:
    """A small fabric: 4 leaves x 2 spines, one host per leaf."""
    return ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)


@pytest.fixture
def medium_spec() -> ClosSpec:
    """A mid-size fabric: 8 leaves x 4 spines, one host per leaf."""
    return ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)


@pytest.fixture
def small_ring_demand(small_spec):
    """Ring reduce-scatter demand over the small fabric."""
    ring = locality_optimized_ring(small_spec.n_hosts)
    return ring_demand(ring, 400_000)


@pytest.fixture
def medium_ring_demand(medium_spec):
    """Ring reduce-scatter demand over the medium fabric."""
    ring = locality_optimized_ring(medium_spec.n_hosts)
    return ring_demand(ring, 800_000)
