"""Cross-module property tests: end-to-end invariants of the whole
pipeline under randomized fabrics, demands, and faults."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import _same_cable
from repro.collectives import (
    DemandMatrix,
    locality_optimized_ring,
    ring_demand,
)
from repro.core import (
    AnalyticalPredictor,
    DetectionConfig,
    FlowPulseMonitor,
    SimulationPredictor,
)
from repro.fastsim import FabricModel, expected_iteration, run_iterations
from repro.topology import ClosSpec, down_link, up_link
from repro.units import MIB


@settings(max_examples=25, deadline=None)
@given(
    n_leaves=st.integers(3, 8),
    n_spines=st.integers(2, 6),
    direction=st.sampled_from(["up", "down"]),
    drop_permille=st.integers(30, 300),
    seed=st.integers(0, 10_000),
)
def test_property_injected_fault_always_detected_and_cable_named(
    n_leaves, n_spines, direction, drop_permille, seed
):
    """Any silent fault >= 3% on any leaf-spine link of any small fabric
    is detected within 3 iterations and its cable is among the suspects."""
    rng = np.random.Generator(np.random.PCG64(seed))
    spec = ClosSpec(n_leaves=n_leaves, n_spines=n_spines, hosts_per_leaf=1)
    leaf = int(rng.integers(n_leaves))
    spine = int(rng.integers(n_spines))
    fault = (
        up_link(leaf, spine) if direction == "up" else down_link(spine, leaf)
    )
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), 512 * MIB)
    model = FabricModel(spec, silent={fault: drop_permille / 1000}, mtu=1024)
    records = run_iterations(model, demand, 3, seed=seed)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(spec, demand), DetectionConfig(threshold=0.01)
    )
    verdict = monitor.process_run(records)
    assert verdict.triggered
    assert any(
        _same_cable(link, fault) for link in verdict.suspected_links()
    )


@settings(max_examples=25, deadline=None)
@given(
    n_leaves=st.integers(3, 8),
    n_spines=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_property_healthy_fabric_never_alarms_above_noise_model(
    n_leaves, n_spines, seed
):
    """With no silent fault, the score stays under 6x the analytic noise
    sigma (a generous bound that holds for all seeds)."""
    from repro.core import port_noise_sigma

    spec = ClosSpec(n_leaves=n_leaves, n_spines=n_spines, hosts_per_leaf=1)
    total = 512 * MIB
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), total)
    model = FabricModel(spec, mtu=1024)
    records = run_iterations(model, demand, 2, seed=seed)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(spec, demand), DetectionConfig(threshold=0.5)
    )
    verdict = monitor.process_run(records)
    pair_bytes = max(v for _, _, v in demand.pairs())
    sigma = port_noise_sigma(pair_bytes, n_spines, 1024, "random")
    assert verdict.max_score < max(6 * sigma, 1e-6)


@settings(max_examples=20, deadline=None)
@given(
    n_leaves=st.integers(3, 6),
    n_spines=st.integers(2, 4),
    pairs=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 10**7)),
        min_size=1,
        max_size=12,
    ),
    seed=st.integers(0, 10_000),
)
def test_property_fastsim_conserves_arbitrary_demand(
    n_leaves, n_spines, pairs, seed
):
    """For any demand matrix, each leaf receives exactly its inbound
    non-local demand (the fabric is lossless end to end)."""
    spec = ClosSpec(n_leaves=n_leaves, n_spines=n_spines, hosts_per_leaf=1)
    demand = DemandMatrix()
    for src, dst, size in pairs:
        src %= spec.n_hosts
        dst %= spec.n_hosts
        if src != dst:
            demand.add(src, dst, size)
    if len(demand) == 0:
        return
    rng = np.random.Generator(np.random.PCG64(seed))
    from repro.fastsim import simulate_iteration

    records = simulate_iteration(FabricModel(spec, mtu=777), demand, rng)
    leaf_pairs = demand.leaf_pairs(spec)
    for record in records:
        inbound = sum(
            v for (s, d), v in leaf_pairs.items() if d == record.leaf
        )
        assert record.total_bytes == inbound


@settings(max_examples=15, deadline=None)
@given(
    n_spines=st.integers(2, 6),
    dead_spines=st.integers(0, 2),
    seed=st.integers(0, 10_000),
)
def test_property_analytical_equals_simulation_expectation(
    n_spines, dead_spines, seed
):
    """The analytical d/(s-f) model and the simulation predictor's
    closed-form expectation agree exactly whenever the only known
    faults are binary (up/down) — the regime of Fig. 2."""
    rng = np.random.Generator(np.random.PCG64(seed))
    spec = ClosSpec(n_leaves=5, n_spines=n_spines, hosts_per_leaf=1)
    dead_spines = min(dead_spines, n_spines - 1)
    disabled = set()
    for _ in range(dead_spines):
        leaf = int(rng.integers(spec.n_leaves))
        spine = int(rng.integers(n_spines))
        name = down_link(spine, leaf)
        # Keep connectivity: never kill the last spine of a leaf.
        already = sum(
            1 for s in range(n_spines) if down_link(s, leaf) in disabled
        )
        if already < n_spines - 1:
            disabled.add(name)
    disabled = frozenset(disabled)
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), 1_000_000)
    model = FabricModel(spec, known_disabled=disabled, mtu=1024)
    analytical = AnalyticalPredictor(spec, demand, known_disabled=disabled).predict()
    simulated = SimulationPredictor(model, demand, backend="expected").predict()
    for leaf in range(spec.n_leaves):
        a = analytical.for_leaf(leaf).port_bytes
        s = simulated.for_leaf(leaf).port_bytes
        assert set(a) == set(s)
        for spine, volume in a.items():
            assert s[spine] == pytest.approx(volume, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    implications=st.lists(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)), max_size=3),
        min_size=1,
        max_size=12,
    ),
    confirm_after=st.integers(1, 3),
)
def test_property_remediation_needs_enough_evidence(implications, confirm_after):
    """The engine disables a cable only when it was implicated in at
    least ``confirm_after`` of the last ``window`` iterations, and every
    disabled cable was actually implicated."""
    from collections import deque

    from repro.core import ConfirmationPolicy, RemediationEngine
    from tests.core.test_remediation import verdict_with

    window = 4
    engine = RemediationEngine(
        ConfirmationPolicy(confirm_after=confirm_after, window=window)
    )
    recent: deque = deque(maxlen=window)
    for iteration, cables in enumerate(implications):
        links = [down_link(spine, leaf) for leaf, spine in cables]
        recent.append({(leaf, spine) for leaf, spine in cables})
        action = engine.observe(verdict_with(iteration, links))
        if action is not None:
            # Every cable acted on had enough in-window evidence.
            for cable in action.cables:
                count = sum(1 for past in recent if cable in past)
                assert count >= confirm_after
    # And globally: every disabled cable was implicated at least
    # confirm_after times across the whole run.
    all_implications = [
        {(leaf, spine) for leaf, spine in cables} for cables in implications
    ]
    for action in engine.actions:
        for cable in action.cables:
            total = sum(1 for past in all_implications if cable in past)
            assert total >= confirm_after
