"""Replicated coordinator: Paxos safety, leases, and view changes.

No processes and no wall clock — the ensemble is in-process and the
clock is logical, so every scenario here (leader crash mid-commit,
quorum loss, lease expiry) is exactly reproducible.
"""

from __future__ import annotations

import pytest

from repro.fleet.ha import (
    Acceptor,
    Ballot,
    CoordinatorError,
    LeaseHeldError,
    ProposerCrashed,
    QuorumLostError,
    ReplicatedCoordinator,
    View,
)
from repro.telemetry.events import EventLog


def make_coordinator(**kwargs) -> ReplicatedCoordinator:
    return ReplicatedCoordinator(event_log=EventLog(), **kwargs)


# ----------------------------------------------------------------------
# Basic commit path
# ----------------------------------------------------------------------
def test_genesis_view_is_epoch_zero():
    coordinator = make_coordinator()
    assert coordinator.epoch == 0
    assert coordinator.view.shards == ()


def test_commit_bumps_epoch_and_returns_view():
    coordinator = make_coordinator()
    view = coordinator.commit(shards=[0, 1], reason="bootstrap")
    assert view.epoch == 1
    assert view.shards == (0, 1)
    assert coordinator.view == view
    second = coordinator.commit(shards=[1], reason="failover")
    assert second.epoch == 2
    assert coordinator.is_current(2)
    assert not coordinator.is_current(1)


def test_commit_normalizes_shards_and_pins():
    coordinator = make_coordinator()
    view = coordinator.commit(shards=[2, 0, 2], pins=((7, 2), (3, 0)))
    assert view.shards == (0, 2)
    assert view.pins == ((3, 0), (7, 2))
    assert view.pin_map == {3: 0, 7: 2}


def test_empty_shard_set_rejected():
    coordinator = make_coordinator()
    with pytest.raises(CoordinatorError):
        coordinator.commit(shards=[])


def test_view_events_are_emitted():
    coordinator = make_coordinator()
    coordinator.commit(shards=[0, 1], reason="bootstrap")
    committed = coordinator.event_log.of_type("ha.view_committed")
    assert len(committed) == 1
    assert committed[0]["epoch"] == 1
    assert committed[0]["reason"] == "bootstrap"
    assert coordinator.event_log.of_type("ha.leader_elected")


# ----------------------------------------------------------------------
# Leases and view changes
# ----------------------------------------------------------------------
def test_lease_holder_commits_without_new_election():
    coordinator = make_coordinator(lease_ticks=16)
    coordinator.commit(shards=[0, 1])
    elections = coordinator.elections
    coordinator.commit(shards=[0])
    assert coordinator.elections == elections  # lease skipped phase 1


def test_rival_election_refused_while_lease_is_live():
    coordinator = make_coordinator(lease_ticks=16)
    coordinator.commit(shards=[0, 1])
    assert coordinator.leader == 0
    with pytest.raises(LeaseHeldError):
        coordinator.elect(candidate=1)


def test_lease_expiry_allows_view_change():
    coordinator = make_coordinator(lease_ticks=4)
    coordinator.commit(shards=[0, 1])
    coordinator.tick(10)
    assert not coordinator.leader_live()
    coordinator.elect(candidate=1)
    assert coordinator.leader == 1


def test_leader_failure_triggers_view_change_on_next_commit():
    coordinator = make_coordinator()
    coordinator.commit(shards=[0, 1])
    dead_leader = coordinator.leader
    coordinator.fail_replica(dead_leader)
    view = coordinator.commit(shards=[1], reason="failover")
    assert view.epoch == 2
    assert coordinator.leader != dead_leader
    assert coordinator.replicas[coordinator.leader].alive


# ----------------------------------------------------------------------
# Quorum loss
# ----------------------------------------------------------------------
def test_commit_survives_one_replica_failure():
    coordinator = make_coordinator()
    coordinator.commit(shards=[0, 1])
    coordinator.fail_replica(2)
    view = coordinator.commit(shards=[0])
    assert view.epoch == 2


def test_quorum_loss_blocks_commits_but_keeps_last_view():
    coordinator = make_coordinator()
    view = coordinator.commit(shards=[0, 1])
    coordinator.fail_replica(1)
    coordinator.fail_replica(2)
    coordinator.tick(100)  # expire the lease so commit must elect
    with pytest.raises(QuorumLostError):
        coordinator.commit(shards=[0])
    assert coordinator.view == view  # reads still serve the old epoch


def test_healed_replica_restores_quorum():
    coordinator = make_coordinator()
    coordinator.commit(shards=[0, 1])
    coordinator.fail_replica(1)
    coordinator.fail_replica(2)
    coordinator.tick(100)
    with pytest.raises(QuorumLostError):
        coordinator.commit(shards=[0])
    coordinator.heal_replica(1)
    assert coordinator.commit(shards=[0]).epoch == 2


# ----------------------------------------------------------------------
# Paxos safety: interrupted proposer
# ----------------------------------------------------------------------
def test_crashed_proposer_value_is_completed_not_overwritten():
    """A value any acceptor accepted before the proposer died must be
    completed by the next leader — the classic single-decree safety
    property — and the new proposal lands on the next epoch."""
    coordinator = make_coordinator()
    coordinator.commit(shards=[0, 1, 2], reason="bootstrap")
    with pytest.raises(ProposerCrashed):
        coordinator.commit(shards=[1, 2], reason="failover", _crash_after=1)
    # The crash left epoch 2 partially accepted and leadership vacant.
    assert coordinator.epoch == 1
    view = coordinator.commit(shards=[0, 1, 2], pins=((9, 0),), reason="grow")
    # The new leader completed the crashed proposal first...
    assert coordinator.chosen[2].shards == (1, 2)
    assert coordinator.chosen[2].reason == "failover"
    # ...and only then committed its own view, on the next epoch.
    assert view.epoch == 3
    assert view.pins == ((9, 0),)
    assert coordinator.view == view


def test_crash_before_any_accept_leaves_nothing_to_complete():
    coordinator = make_coordinator()
    coordinator.commit(shards=[0, 1], reason="bootstrap")
    with pytest.raises(ProposerCrashed):
        coordinator.commit(shards=[1], _crash_after=0)
    view = coordinator.commit(shards=[0, 1, 2], reason="grow")
    assert view.epoch == 2  # the slot was genuinely free
    assert view.shards == (0, 1, 2)


# ----------------------------------------------------------------------
# Acceptor protocol
# ----------------------------------------------------------------------
def test_acceptor_promise_blocks_lower_ballots():
    acceptor = Acceptor()
    high = Ballot(5, 1)
    low = Ballot(3, 0)
    assert acceptor.prepare(high).ok
    refused = acceptor.prepare(low)
    assert not refused.ok
    assert refused.promised == high
    assert not acceptor.accept(0, low, View(epoch=1, shards=(0,)))
    assert acceptor.accept(0, high, View(epoch=1, shards=(0,)))


def test_acceptor_surrenders_accepted_values_on_prepare():
    acceptor = Acceptor()
    ballot = Ballot(1, 0)
    view = View(epoch=1, shards=(0, 1))
    acceptor.prepare(ballot)
    acceptor.accept(1, ballot, view)
    promise = acceptor.prepare(Ballot(2, 1))
    assert promise.ok
    assert promise.accepted[1] == (ballot, view)


def test_clock_cannot_run_backwards():
    coordinator = make_coordinator()
    with pytest.raises(CoordinatorError):
        coordinator.tick(-1)
