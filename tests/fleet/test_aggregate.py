"""Aggregator tests on synthetic verdicts (no simulation needed)."""

from __future__ import annotations

from dataclasses import dataclass

import json
import math

import pytest

from repro.core.localization import LinkSuspicion, LocalizationResult
from repro.core.monitor import IterationVerdict
from repro.core.prediction.learning import LearningEvent
from repro.fleet import FleetAggregator, incident_from_event
from repro.fleet.aggregate import Incident
from repro.telemetry.events import EventLog, event_to_json


@dataclass(frozen=True)
class FakeResult:
    """Just enough detection-result surface for ``triggered``."""

    triggered: bool = True
    max_abs_deviation: float = 0.02


def suspicion(link="down:S0->L1", kind="local", leaf=1, deviation=-0.02, senders=(3, 4)):
    return LinkSuspicion(
        link=link,
        kind=kind,
        leaf=leaf,
        spine=0,
        affected_senders=tuple(senders),
        deviation=deviation,
    )


def verdict(iteration, suspicions=(), leaf=1, triggered=True):
    localizations = (
        (LocalizationResult(leaf=leaf, iteration=iteration, suspicions=tuple(suspicions)),)
        if suspicions
        else ()
    )
    return IterationVerdict(
        iteration=iteration,
        learning_event=LearningEvent.NONE,
        skipped=False,
        results=(FakeResult(triggered=triggered),) if triggered else (),
        localizations=localizations,
    )


def test_quiet_verdicts_produce_no_incidents():
    aggregator = FleetAggregator()
    aggregator.observe(1, verdict(0, triggered=False))
    aggregator.observe(1, verdict(1, triggered=False))
    assert aggregator.incidents == []
    assert aggregator.verdicts_seen == 2
    assert aggregator.alarmed_verdicts == 0


def test_repeated_alarms_collapse_into_one_incident():
    aggregator = FleetAggregator()
    for iteration in range(3):
        aggregator.observe(7, verdict(iteration, [suspicion(deviation=-0.01 * (iteration + 1))]))
    incidents = aggregator.incidents
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.job_id == 7
    assert (incident.first_seen, incident.last_seen) == (0, 2)
    assert incident.n_iterations == 3
    assert incident.worst_deviation == -0.03  # the most negative wins


def test_distinct_links_and_jobs_stay_separate():
    aggregator = FleetAggregator()
    aggregator.observe(1, verdict(0, [suspicion(link="down:S0->L1")]))
    aggregator.observe(1, verdict(0, [suspicion(link="up:L1->S0", kind="remote")]))
    aggregator.observe(2, verdict(0, [suspicion(link="down:S0->L1")]))
    assert len(aggregator.incidents) == 3
    assert aggregator.jobs_with_incidents() == frozenset({1, 2})
    assert [incident.job_id for incident in aggregator.incidents] == [1, 1, 2]


def test_kind_disagreement_becomes_mixed():
    aggregator = FleetAggregator()
    aggregator.observe(1, verdict(0, [suspicion(kind="local")]))
    aggregator.observe(1, verdict(1, [suspicion(kind="remote")]))
    assert aggregator.incidents[0].kind == "mixed"


def test_sender_evidence_keeps_worst_deviation():
    aggregator = FleetAggregator()
    aggregator.observe(1, verdict(0, [suspicion(senders=(3,), deviation=-0.01)]))
    aggregator.observe(1, verdict(1, [suspicion(senders=(3, 5), deviation=-0.04)]))
    aggregator.observe(1, verdict(2, [suspicion(senders=(3,), deviation=-0.02)]))
    incident = aggregator.incidents[0]
    assert incident.senders == {3: -0.04, 5: -0.04}


def test_observing_leaves_accumulate():
    aggregator = FleetAggregator()
    aggregator.observe(1, verdict(0, [suspicion(leaf=1)], leaf=1))
    aggregator.observe(1, verdict(1, [suspicion(leaf=4)], leaf=4))
    assert aggregator.incidents[0].leaves == {1, 4}


def test_event_log_lifecycle():
    log = EventLog()
    aggregator = FleetAggregator(event_log=log)
    aggregator.observe(1, verdict(0, [suspicion()]))
    aggregator.observe(1, verdict(1, [suspicion()]))  # same link: no new open
    aggregator.observe(1, verdict(1, [suspicion(link="up:L1->S0")]))
    assert len(log.of_type("incident.opened")) == 2
    incidents = aggregator.finalize()
    closed = log.of_type("incident.closed")
    assert len(closed) == len(incidents) == 2
    rollup = closed[0]
    assert rollup["n_iterations"] == 2
    assert rollup["senders"] == {"3": -0.02, "4": -0.02}


def test_to_event_is_json_ready():
    aggregator = FleetAggregator()
    aggregator.observe(9, verdict(0, [suspicion()]))
    payload = aggregator.incidents[0].to_event()
    json.dumps(payload)  # must not raise
    assert payload["leaves"] == [1]
    assert payload["duration"] == 1
    assert payload["reopened"] == 0
    assert payload["iterations"] == [0]


# ----------------------------------------------------------------------
# Evidence round-trip: to_event -> JSON wire -> incident_from_event
# ----------------------------------------------------------------------
def round_trip(incident: Incident) -> Incident:
    """The full wire path: strict-JSON serialize, parse, rebuild."""
    event = json.loads(event_to_json({"type": "incident.closed", **incident.to_event()}))
    return incident_from_event(event)


@pytest.mark.parametrize(
    "incident",
    [
        Incident(job_id=1, link="down:S0->L1", kind="local",
                 first_seen=0, last_seen=0, worst_deviation=-0.02,
                 senders={3: -0.02}, leaves={1}, iterations={0}),
        Incident(job_id=7, link="up:L5->S0", kind="mixed",
                 first_seen=2, last_seen=19, worst_deviation=-0.4,
                 senders={0: -0.4, 11: -0.1}, leaves={1, 4, 5},
                 iterations={2, 3, 19}, reopened=2),
    ],
)
def test_incident_round_trips_exactly(incident):
    rebuilt = round_trip(incident)
    assert rebuilt == incident
    assert all(isinstance(s, int) for s in rebuilt.senders)
    assert all(isinstance(leaf, int) for leaf in rebuilt.leaves)


def test_incident_round_trip_restores_non_finite_deviation():
    incident = Incident(job_id=1, link="down:S0->L1", kind="local",
                        first_seen=0, last_seen=1,
                        worst_deviation=-math.inf,
                        senders={3: -math.inf}, leaves={1},
                        iterations={0, 1})
    rebuilt = round_trip(incident)  # wire carries the string "-Infinity"
    assert rebuilt.worst_deviation == -math.inf
    assert rebuilt.senders == {3: -math.inf}


def test_incident_from_event_without_iterations_falls_back_to_span():
    event = {"job_id": 1, "link": "a->b", "kind": "local",
             "first_seen": 3, "last_seen": 8, "worst_deviation": -0.1}
    rebuilt = incident_from_event(event)  # an older writer's payload
    assert rebuilt.iterations == {3, 8}
    assert rebuilt.reopened == 0
    assert rebuilt.duration == 6


def test_aggregator_round_trip_through_event_log():
    log = EventLog()
    aggregator = FleetAggregator(event_log=log)
    aggregator.observe(1, verdict(0, [suspicion()]))
    aggregator.observe(1, verdict(2, [suspicion(deviation=-0.05)]))
    incidents = aggregator.finalize()
    rebuilt = [
        incident_from_event(json.loads(event_to_json(e)))
        for e in log.of_type("incident.closed")
    ]
    assert rebuilt == incidents


# ----------------------------------------------------------------------
# Flap detection: incident.reopened after a quiet gap
# ----------------------------------------------------------------------
def test_alarm_within_quiet_gap_does_not_reopen():
    log = EventLog()
    aggregator = FleetAggregator(event_log=log, quiet_gap=3)
    aggregator.observe(1, verdict(0, [suspicion()]))
    aggregator.observe(1, verdict(3, [suspicion()]))  # gap == quiet_gap
    assert log.of_type("incident.reopened") == []
    assert aggregator.incidents[0].reopened == 0


def test_alarm_after_quiet_gap_emits_reopened():
    log = EventLog()
    aggregator = FleetAggregator(event_log=log, quiet_gap=3)
    aggregator.observe(1, verdict(0, [suspicion()]))
    aggregator.observe(1, verdict(5, [suspicion(deviation=-0.07)]))
    reopened = log.of_type("incident.reopened")
    assert len(reopened) == 1
    event = reopened[0]
    assert event["link"] == "down:S0->L1"
    assert event["iteration"] == 5
    assert event["last_seen"] == 0
    assert event["quiet_iterations"] == 4
    incident = aggregator.incidents[0]
    assert incident.reopened == 1
    assert incident.first_seen == 0 and incident.last_seen == 5


def test_repeated_flaps_accumulate_in_closed_rollup():
    log = EventLog()
    aggregator = FleetAggregator(event_log=log, quiet_gap=1)
    for iteration in (0, 4, 9):
        aggregator.observe(1, verdict(iteration, [suspicion()]))
    aggregator.finalize()
    assert len(log.of_type("incident.reopened")) == 2
    assert log.of_type("incident.closed")[0]["reopened"] == 2


def test_quiet_gap_must_be_positive():
    with pytest.raises(ValueError):
        FleetAggregator(quiet_gap=0)


# ----------------------------------------------------------------------
# Idempotent replay: the HA property.  After a shard failover the
# survivor replays the dead shard's journal, so the aggregator may see
# the exact same verdict sequence folded a second time.  The incident
# table — every field that reaches the rollup — must not change.
# ----------------------------------------------------------------------
def rollup(aggregator):
    return [incident.to_event() for incident in aggregator.incidents]


def flapping_sequence():
    """Alarms, a quiet gap that reopens, more alarms: the sequence that
    exercises every _fold branch."""
    return [
        verdict(0, [suspicion(deviation=-0.02)]),
        verdict(1, [suspicion(deviation=-0.05, senders=(3,))]),
        verdict(2, triggered=False),
        verdict(6, [suspicion(deviation=-0.01, kind="remote")]),  # reopen
        verdict(7, [suspicion(link="up:L1->S0")]),
    ]


def test_refolding_the_same_verdicts_changes_nothing():
    log = EventLog()
    aggregator = FleetAggregator(event_log=log, quiet_gap=3)
    sequence = flapping_sequence()
    for item in sequence:
        aggregator.observe(1, item)
    before = rollup(aggregator)
    opened_before = len(log.of_type("incident.opened"))
    reopened_before = len(log.of_type("incident.reopened"))
    for item in sequence:  # journal replay: same verdicts, same order
        aggregator.observe(1, item)
    assert rollup(aggregator) == before
    assert len(log.of_type("incident.opened")) == opened_before
    assert len(log.of_type("incident.reopened")) == reopened_before


def test_replay_boundary_does_not_double_count_the_flap():
    """The flap edge: the replay re-delivers the iteration *at* the
    reopen boundary, then the live stream continues past a second quiet
    gap.  Exactly one reopen per real gap — never one per delivery."""
    log = EventLog()
    aggregator = FleetAggregator(event_log=log, quiet_gap=2)
    aggregator.observe(1, verdict(0, [suspicion()]))
    aggregator.observe(1, verdict(5, [suspicion()]))  # real flap #1
    aggregator.observe(1, verdict(5, [suspicion()]))  # replayed boundary
    aggregator.observe(1, verdict(0, [suspicion()]))  # replayed prefix
    assert aggregator.incidents[0].reopened == 1
    aggregator.observe(1, verdict(11, [suspicion()]))  # real flap #2
    assert aggregator.incidents[0].reopened == 2
    assert len(log.of_type("incident.reopened")) == 2
    incident = aggregator.incidents[0]
    assert (incident.first_seen, incident.last_seen) == (0, 11)
    assert incident.n_iterations == 3  # {0, 5, 11} — replays not recounted


def test_partial_replay_prefix_is_absorbed():
    """A replay that covers only a prefix (the dead shard journaled
    more than it delivered) still converges to the same rollup."""
    aggregator_once = FleetAggregator(quiet_gap=3)
    aggregator_replay = FleetAggregator(quiet_gap=3)
    sequence = flapping_sequence()
    for item in sequence:
        aggregator_once.observe(4, item)
    for item in sequence[:2]:  # delivered before the crash
        aggregator_replay.observe(4, item)
    for item in sequence:  # full journal replay, then the tail
        aggregator_replay.observe(4, item)
    assert rollup(aggregator_replay) == rollup(aggregator_once)


def test_sender_attribution_is_replay_stable():
    aggregator = FleetAggregator()
    item = verdict(3, [suspicion(deviation=-0.04, senders=(3, 4))])
    aggregator.observe(2, item)
    aggregator.observe(2, verdict(4, [suspicion(deviation=-0.02, senders=(4, 5))]))
    senders_before = dict(aggregator.incidents[0].senders)
    aggregator.observe(2, item)  # replay the worse deviation
    assert aggregator.incidents[0].senders == senders_before
    assert senders_before == {3: -0.04, 4: -0.04, 5: -0.02}
