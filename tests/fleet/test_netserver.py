"""TCP ingest front-end: parity over sockets, backpressure, containment.

The server speaks the same self-delimiting fprec wire format as the
files, one :class:`StreamDecoder` per connection, so anything provable
for file replay must hold over TCP: bit-identical verdicts, conserved
record accounting, and protocol errors contained to one connection.
"""

from __future__ import annotations

import asyncio

from repro.fleet import FPREC_VERSION_BINARY, FleetConfig, reference_verdicts
from repro.fleet.ha import (
    FleetNetServer,
    HAConfig,
    HAFleetService,
    NetServerConfig,
    stream_workload,
)


def ha_service(n_shards: int = 2, **config_overrides) -> HAFleetService:
    return HAFleetService(
        FleetConfig(n_shards=n_shards, return_verdicts=True, **config_overrides),
        ha=HAConfig(heartbeat_every=None, auto_failover=False),
    )


def serve_and_stream(
    service, jobs, batches, *, version=1, connections=1, config=None
):
    """Run the server in this thread's event loop and the blocking
    client in a worker thread; returns (server, client_stats)."""

    async def _run():
        server = FleetNetServer(service, config or NetServerConfig())
        await server.start()
        try:
            stats = await asyncio.to_thread(
                stream_workload,
                "127.0.0.1",
                server.port,
                jobs,
                batches,
                version=version,
                connections=connections,
            )
        finally:
            await server.close()
        return server, stats

    return asyncio.run(_run())


def assert_parity(result, jobs, batches):
    reference = reference_verdicts(jobs, batches)
    for job in jobs:
        assert result.verdicts_for(job.job_id) == reference[job.job_id]
    assert result.lost_records == 0
    assert result.accounting_ok


def test_tcp_ingest_single_connection_parity(small_workload):
    jobs, batches = small_workload
    service = ha_service()
    with service:
        server, stats = serve_and_stream(service, jobs, batches)
    assert stats.connections == 1
    assert server.stats.jobs == len(jobs)
    assert server.stats.batches == len(batches)
    assert server.stats.records == sum(len(b.records) for b in batches)
    assert server.stats.protocol_errors == 0
    assert_parity(service.result, jobs, batches)


def test_tcp_ingest_many_connections_binary_wire_parity(small_workload):
    """Job-affinity lanes: per-job order survives 4 concurrent
    connections speaking the binary wire format."""
    jobs, batches = small_workload
    service = ha_service()
    with service:
        server, stats = serve_and_stream(
            service, jobs, batches, version=FPREC_VERSION_BINARY, connections=4
        )
    assert stats.connections == 4
    assert server.stats.connections_total == 4
    assert server.stats.connections_open == 0
    assert_parity(service.result, jobs, batches)


def test_tcp_ingest_applies_backpressure_not_loss(small_workload):
    """A tiny shard queue forces the server to pause reads; every
    record still lands exactly once."""
    jobs, batches = small_workload
    service = ha_service(queue_depth=2)
    config = NetServerConfig(read_chunk=512, backpressure_wait_s=0.001)
    with service:
        server, _stats = serve_and_stream(
            service, jobs, batches, connections=2, config=config
        )
    assert server.stats.records == sum(len(b.records) for b in batches)
    assert_parity(service.result, jobs, batches)


def test_protocol_error_contained_to_one_connection(small_workload):
    """Garbage on one connection closes that connection only; the
    stream on a fresh connection is unaffected."""
    jobs, batches = small_workload
    service = ha_service()

    async def _run():
        server = FleetNetServer(service)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"\x80\x81 this is not fprec\n")
            await writer.drain()
            assert await reader.read() == b""  # server hung up on us
            writer.close()
            stats = await asyncio.to_thread(
                stream_workload, "127.0.0.1", server.port, jobs, batches
            )
            return server, stats
        finally:
            await server.close()

    with service:
        server, _stats = asyncio.run(_run())
    assert server.stats.protocol_errors == 1
    assert server.stats.connections_total == 2
    assert_parity(service.result, jobs, batches)


def test_close_waits_for_inflight_connection(small_workload):
    """Graceful close drains a connection that is mid-stream instead of
    dropping its tail."""
    jobs, batches = small_workload
    service = ha_service()

    async def _run():
        server = FleetNetServer(service)
        await server.start()
        client = asyncio.create_task(
            asyncio.to_thread(
                stream_workload, "127.0.0.1", server.port, jobs, batches
            )
        )
        # Close as soon as the connection shows up; drain grace must
        # let the in-flight stream finish.
        while server.stats.connections_total == 0:
            await asyncio.sleep(0.005)
        await client  # client finishes writing
        await server.close()
        return server

    with service:
        server = asyncio.run(_run())
    assert server.stats.records == sum(len(b.records) for b in batches)
    assert_parity(service.result, jobs, batches)


def test_truncated_stream_counts_as_protocol_error(small_workload):
    """A connection that dies mid-frame is a protocol error, not a
    crash, and what fully arrived is still processed."""
    jobs, batches = small_workload
    service = ha_service()
    from repro.fleet import encode_batch, encode_job
    from repro.fleet.codec import _stream_unit

    payload = b"".join(
        _stream_unit(encode_job(job, version=FPREC_VERSION_BINARY), text=False)
        for job in jobs
    )
    frame = _stream_unit(
        encode_batch(batches[0], version=FPREC_VERSION_BINARY), text=False
    )
    payload += frame[:-3]  # cut the final frame short

    async def _run():
        server = FleetNetServer(service)
        await server.start()
        try:
            _reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            for _ in range(200):
                if server.stats.connections_open == 0:
                    break
                await asyncio.sleep(0.01)
        finally:
            await server.close()
        return server

    with service:
        server = asyncio.run(_run())
    assert server.stats.jobs == len(jobs)
    assert server.stats.batches == 0
    assert server.stats.protocol_errors == 1
