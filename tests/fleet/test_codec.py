"""Wire-format tests: exact round-trips, typed failures, routing peek."""

from __future__ import annotations

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import ExperimentConfig
from repro.fleet import (
    CodecError,
    JobConfig,
    RecordBatch,
    UnsupportedVersionError,
    decode_batch,
    decode_job,
    decode_line,
    encode_batch,
    encode_job,
    peek_batch,
    read_fprec,
    write_fprec,
)
from repro.fleet.codec import FPREC_VERSION
from repro.simnet.counters import IterationRecord
from repro.simnet.packet import FlowTag


def make_record(leaf=0, job_id=3, iteration=2, port_bytes=None, sender_bytes=None):
    return IterationRecord(
        leaf=leaf,
        tag=FlowTag(job_id=job_id, iteration=iteration),
        port_bytes=port_bytes if port_bytes is not None else {0: 1000, 1: 2000},
        sender_bytes=sender_bytes
        if sender_bytes is not None
        else {(0, 1): 400, (0, 2): 600, (1, 2): 2000},
        start_ns=100,
        end_ns=5_000,
    )


def make_batch(n_leaves=3, **kwargs):
    return RecordBatch.from_records(
        [make_record(leaf=leaf, **kwargs) for leaf in range(n_leaves)]
    )


# ----------------------------------------------------------------------
# Batch round-trips
# ----------------------------------------------------------------------
def test_batch_round_trip_exact():
    batch = make_batch()
    decoded = decode_batch(encode_batch(batch))
    assert decoded == batch
    # dict keys keep their types (ints and int-pairs, not strings)
    record = decoded.records[0]
    assert all(type(k) is int for k in record.port_bytes)
    assert all(type(k) is tuple for k in record.sender_bytes)


def test_batch_preserves_record_order():
    records = [make_record(leaf=leaf) for leaf in (2, 0, 1)]
    batch = RecordBatch.from_records(records)
    decoded = decode_batch(encode_batch(batch))
    assert [r.leaf for r in decoded.records] == [2, 0, 1]


def test_empty_batch_rejected():
    with pytest.raises(CodecError, match="empty"):
        RecordBatch.from_records([])


def test_mixed_tags_rejected():
    with pytest.raises(CodecError, match="mixed tags"):
        RecordBatch.from_records(
            [make_record(leaf=0, iteration=1), make_record(leaf=1, iteration=2)]
        )


@settings(max_examples=25, deadline=None)
@given(
    job_id=st.integers(min_value=1, max_value=10**6),
    iteration=st.integers(min_value=0, max_value=10**6),
    n_leaves=st.integers(min_value=1, max_value=5),
    sizes=st.lists(st.integers(min_value=0, max_value=2**48), min_size=1, max_size=6),
    start_ns=st.integers(min_value=0, max_value=2**62),
)
def test_batch_round_trip_property(job_id, iteration, n_leaves, sizes, start_ns):
    tag = FlowTag(job_id=job_id, iteration=iteration)
    records = [
        IterationRecord(
            leaf=leaf,
            tag=tag,
            port_bytes={i: size for i, size in enumerate(sizes)},
            sender_bytes={(i, (i + 1) % 8): size for i, size in enumerate(sizes)},
            start_ns=start_ns,
            end_ns=start_ns + 1,
        )
        for leaf in range(n_leaves)
    ]
    batch = RecordBatch.from_records(records)
    line = encode_batch(batch)
    assert decode_batch(line) == batch
    assert peek_batch(line) == (job_id, n_leaves)


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, min_value=0, max_value=1e15),
        min_size=1,
        max_size=4,
    )
)
def test_float_sizes_round_trip_exact(sizes):
    """Finite float byte counts (fastsim emits float64) survive bit-exactly."""
    batch = make_batch(port_bytes={i: s for i, s in enumerate(sizes)}, sender_bytes={})
    decoded = decode_batch(encode_batch(batch))
    for original, roundtripped in zip(sizes, decoded.records[0].port_bytes.values()):
        assert roundtripped == original and math.copysign(1, roundtripped) == math.copysign(1, original)


# ----------------------------------------------------------------------
# Non-finite rejection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_port_bytes_rejected_on_encode(bad):
    batch = make_batch(port_bytes={0: bad})
    with pytest.raises(CodecError, match="non-finite"):
        encode_batch(batch)


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_non_finite_sender_bytes_rejected_on_encode(bad):
    batch = make_batch(sender_bytes={(0, 1): bad})
    with pytest.raises(CodecError, match="non-finite"):
        encode_batch(batch)


def test_non_finite_json_literal_rejected_on_decode():
    line = encode_batch(make_batch(port_bytes={0: 125.0}))
    doctored = line.replace("125.0", "NaN")
    assert "NaN" in doctored
    with pytest.raises(CodecError, match="non-finite"):
        decode_batch(doctored)


# ----------------------------------------------------------------------
# Versioning and malformed lines
# ----------------------------------------------------------------------
def test_unknown_version_raises_typed_error():
    line = encode_batch(make_batch())
    payload = json.loads(line)
    payload[1] = FPREC_VERSION + 1
    with pytest.raises(UnsupportedVersionError, match="version"):
        decode_batch(json.dumps(payload))
    # and the typed error is still a CodecError for broad handlers
    with pytest.raises(CodecError):
        decode_batch(json.dumps(payload))


def test_unknown_version_not_a_keyerror():
    payload = json.loads(encode_batch(make_batch()))
    payload[1] = 99
    try:
        decode_batch(json.dumps(payload))
    except KeyError:  # pragma: no cover - the regression this guards
        pytest.fail("unknown version must not surface as KeyError")
    except UnsupportedVersionError:
        pass


@pytest.mark.parametrize(
    "line",
    [
        "",
        "not json",
        "{}",
        "[1,2]",
        '["wrong",1,"b"]',
        '["fprec","one","b"]',
        '["fprec",1,"x",1,2]',
    ],
)
def test_malformed_lines_raise_codec_error(line):
    with pytest.raises(CodecError):
        decode_line(line)


def test_record_count_mismatch_rejected():
    payload = json.loads(encode_batch(make_batch(n_leaves=3)))
    payload[4] = 2  # declared n_records
    with pytest.raises(CodecError, match="declares"):
        decode_batch(json.dumps(payload))


# ----------------------------------------------------------------------
# Job configs
# ----------------------------------------------------------------------
def job_config(job_id=4, **overrides):
    experiment = ExperimentConfig(n_leaves=6, n_spines=3, job_id=job_id)
    return JobConfig(job_id=job_id, experiment=experiment, **overrides)


def test_job_round_trip():
    job = job_config(faulted=True, fault_link="down:S1->L2", base_seed=9, trial=3)
    assert decode_job(encode_job(job)) == job


def test_job_round_trip_defaults():
    job = job_config()
    decoded = decode_job(encode_job(job))
    assert decoded == job
    assert decoded.faulted is None


def test_job_id_mismatch_rejected():
    experiment = ExperimentConfig(job_id=2)
    with pytest.raises(CodecError, match="does not match"):
        JobConfig(job_id=3, experiment=experiment)


def test_invalid_experiment_in_job_line_is_codec_error():
    line = encode_job(job_config())
    doctored = line.replace('"drop_rate":0.015', '"drop_rate":7.5')
    assert doctored != line
    with pytest.raises(CodecError, match="malformed job config"):
        decode_job(doctored)


# ----------------------------------------------------------------------
# peek / routing
# ----------------------------------------------------------------------
def test_peek_matches_decode():
    batch = make_batch(n_leaves=4, job_id=17)
    line = encode_batch(batch)
    assert peek_batch(line) == (17, 4)


def test_peek_on_job_line_raises():
    with pytest.raises(CodecError):
        peek_batch(encode_job(job_config()))


# ----------------------------------------------------------------------
# .fprec files
# ----------------------------------------------------------------------
def test_fprec_file_round_trip(tmp_path):
    jobs = [job_config(job_id=1), job_config(job_id=2, faulted=False)]
    batches = [make_batch(job_id=1, iteration=i) for i in range(3)]
    path = tmp_path / "stream.fprec"
    n_lines = write_fprec(path, jobs, batches)
    assert n_lines == 5
    content = read_fprec(path)
    assert content.jobs == jobs
    assert content.batches == batches
    assert content.n_records == 9


def test_fprec_stream_io():
    buffer = io.StringIO()
    write_fprec(buffer, [job_config()], [make_batch(job_id=4)])
    buffer.seek(0)
    content = read_fprec(buffer)
    assert content.job_ids() == [4]
    assert len(content.batches) == 1
