"""Adversarial decode suite shared by both wire versions.

The contract under attack: *every* malformed input — truncated frames,
wrong length prefixes, trailing garbage, flipped bytes, mixed-version
streams — fails with a typed :class:`CodecError` (or its subclass
:class:`UnsupportedVersionError`), never with ``struct.error``,
``IndexError``, ``KeyError``, ``UnicodeDecodeError``, or any other
internal exception a fleet worker's error handling would not catch.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    FPREC_VERSION_BINARY,
    CodecError,
    decode_batch,
    decode_batch_segment,
    decode_job,
    decode_line,
    encode_batch,
    encode_job,
    peek_batch,
    read_fprec,
)

from .test_codec import job_config, make_batch

DECODERS = (decode_line, decode_batch, decode_job, peek_batch, decode_batch_segment)


def assert_typed_failure_or_value(unit):
    """Decoding must either succeed or raise CodecError — nothing else."""
    for decode in DECODERS:
        try:
            decode(unit)
        except CodecError:
            pass  # typed failure: exactly what workers catch


def v2_batch_frame() -> bytes:
    return encode_batch(make_batch(n_leaves=3), version=FPREC_VERSION_BINARY)


def v2_job_frame() -> bytes:
    return encode_job(job_config(), version=FPREC_VERSION_BINARY)


# ----------------------------------------------------------------------
# Truncation: every prefix of a valid unit must fail typed
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_unit", [v2_batch_frame, v2_job_frame])
def test_every_truncation_fails_typed(make_unit):
    unit = make_unit()
    for cut in range(len(unit)):
        truncated = unit[:cut]
        for decode in DECODERS:
            with pytest.raises(CodecError):
                decode(truncated)


def test_every_v1_truncation_fails_typed():
    line = encode_batch(make_batch(n_leaves=2))
    for cut in range(len(line)):
        assert_typed_failure_or_value(line[:cut])  # some prefixes parse as JSON scalars


# ----------------------------------------------------------------------
# Length prefix lies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("delta", [-5, -1, 1, 7, 2**20])
def test_wrong_length_prefix_fails_typed(delta):
    frame = bytearray(v2_batch_frame())
    true_length = int.from_bytes(frame[8:12], "little")
    lied = max(0, true_length + delta)
    frame[8:12] = lied.to_bytes(4, "little")
    with pytest.raises(CodecError, match="length|truncated"):
        decode_batch(bytes(frame))


def test_trailing_garbage_fails_typed():
    frame = v2_batch_frame()
    for tail in (b"\x00", b"junk", v2_batch_frame()):
        with pytest.raises(CodecError):
            decode_batch(frame + tail)


def test_internal_count_lies_fail_typed():
    """A frame whose declared n_records disagrees with its columns."""
    frame = bytearray(v2_batch_frame())
    for n in (0, 1, 2**31):
        doctored = bytearray(frame)
        doctored[28:32] = n.to_bytes(4, "little")  # n_records field
        with pytest.raises(CodecError):
            decode_batch(bytes(doctored))


# ----------------------------------------------------------------------
# Byte flips (deterministic fuzz across every position)
# ----------------------------------------------------------------------
def test_single_byte_flips_never_escape_typed_errors():
    frame = v2_batch_frame()
    for position in range(len(frame)):
        doctored = bytearray(frame)
        doctored[position] ^= 0xFF
        unit = bytes(doctored)
        for decode in (decode_line, decode_batch, decode_batch_segment, peek_batch):
            try:
                decode(unit)
            except CodecError:
                pass  # typed; fine
            # a flip in a value byte may decode to a different valid
            # batch — that is data corruption, not a codec crash


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=80))
def test_random_bytes_fail_typed(data):
    for decode in DECODERS:
        try:
            decode(data)
        except CodecError:
            pass


@settings(max_examples=60, deadline=None)
@given(text=st.text(max_size=80))
def test_random_text_fails_typed(text):
    for decode in (decode_line, decode_batch, decode_job, peek_batch):
        try:
            decode(text)
        except CodecError:
            pass


# ----------------------------------------------------------------------
# Streams: corruption inside .fprec files
# ----------------------------------------------------------------------
def test_truncated_stream_fails_typed(tmp_path):
    path = tmp_path / "cut.fprec"
    frame = v2_batch_frame()
    path.write_bytes(v2_job_frame() + frame[: len(frame) // 2])
    with pytest.raises(CodecError, match="truncated"):
        read_fprec(path)


def test_garbage_between_units_fails_typed(tmp_path):
    path = tmp_path / "junk.fprec"
    path.write_bytes(v2_job_frame() + b"\xfe\xfd garbage \xff\n" + v2_batch_frame())
    with pytest.raises(CodecError):
        read_fprec(path)


def test_mixed_version_stream_with_future_unit_fails_typed(tmp_path):
    """A v3 frame inside an otherwise-valid mixed stream is a typed
    UnsupportedVersionError, not a crash."""
    frame = bytearray(v2_batch_frame())
    frame[4] = FPREC_VERSION_BINARY + 1
    path = tmp_path / "future.fprec"
    with open(path, "wb") as handle:
        handle.write(v2_job_frame())
        handle.write(encode_batch(make_batch()).encode() + b"\n")
        handle.write(bytes(frame))
    from repro.fleet import UnsupportedVersionError

    with pytest.raises(UnsupportedVersionError):
        read_fprec(path)


def test_undecodable_text_line_fails_typed():
    stream = io.BytesIO(b"\x80\x81\x82 not utf8\n")
    with pytest.raises(CodecError, match="undecodable"):
        read_fprec(stream)
