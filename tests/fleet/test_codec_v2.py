"""v2 binary wire format: round-trips, negotiation, peek, validation.

Also holds the regression tests for the v1 validation holes the v2 work
made urgent: the ``peek_batch`` fast path must check magic/version at
their fixed positions, ``_decode_record`` must validate timestamps, and
``decode_job`` must name unknown/missing fields instead of leaking a
bare ``TypeError``.
"""

from __future__ import annotations

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import ExperimentConfig
from repro.fleet import (
    BINARY_MAGIC,
    FPREC_VERSION,
    FPREC_VERSION_BINARY,
    CodecError,
    JobConfig,
    RecordBatch,
    UnsupportedVersionError,
    decode_batch,
    decode_batch_segment,
    decode_job,
    decode_line,
    encode_batch,
    encode_job,
    peek_batch,
    read_fprec,
    write_fprec,
)
from repro.simnet.counters import IterationRecord
from repro.simnet.packet import FlowTag

from .test_codec import job_config, make_batch, make_record


# ----------------------------------------------------------------------
# v2 round-trips
# ----------------------------------------------------------------------
def test_v2_batch_round_trip_exact():
    batch = make_batch()
    frame = encode_batch(batch, version=FPREC_VERSION_BINARY)
    assert isinstance(frame, bytes)
    assert frame.startswith(BINARY_MAGIC)
    decoded = decode_batch(frame)
    assert decoded == batch
    record = decoded.records[0]
    assert all(type(k) is int for k in record.port_bytes)
    assert all(type(k) is tuple for k in record.sender_bytes)


def test_v2_equals_v1_after_decode():
    """Both wire versions decode to the identical batch object."""
    batch = make_batch(n_leaves=4, job_id=9)
    via_v1 = decode_batch(encode_batch(batch, version=FPREC_VERSION))
    via_v2 = decode_batch(encode_batch(batch, version=FPREC_VERSION_BINARY))
    assert via_v1 == via_v2 == batch


def test_v2_job_round_trip():
    job = job_config(faulted=True, fault_link="down:S1->L2", base_seed=9, trial=3)
    frame = encode_job(job, version=FPREC_VERSION_BINARY)
    assert isinstance(frame, bytes)
    assert decode_job(frame) == job
    assert decode_line(frame) == ("j", job)


@settings(max_examples=25, deadline=None)
@given(
    job_id=st.integers(min_value=1, max_value=10**6),
    iteration=st.integers(min_value=0, max_value=10**6),
    n_leaves=st.integers(min_value=1, max_value=5),
    sizes=st.lists(st.integers(min_value=0, max_value=2**48), min_size=1, max_size=6),
    start_ns=st.integers(min_value=0, max_value=2**62),
)
def test_v2_round_trip_property(job_id, iteration, n_leaves, sizes, start_ns):
    tag = FlowTag(job_id=job_id, iteration=iteration)
    records = [
        IterationRecord(
            leaf=leaf,
            tag=tag,
            port_bytes={i: size for i, size in enumerate(sizes)},
            sender_bytes={(i, (i + 1) % 8): size for i, size in enumerate(sizes)},
            start_ns=start_ns,
            end_ns=start_ns + 1,
        )
        for leaf in range(n_leaves)
    ]
    batch = RecordBatch.from_records(records)
    frame = encode_batch(batch, version=FPREC_VERSION_BINARY)
    assert decode_batch(frame) == batch
    assert peek_batch(frame) == (job_id, n_leaves)


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, min_value=0, max_value=1e15),
        min_size=1,
        max_size=4,
    )
)
def test_v2_float_sizes_round_trip_bit_exact(sizes):
    """v2 carries floats as raw IEEE-754 bits; the round-trip is exact."""
    batch = make_batch(port_bytes={i: s for i, s in enumerate(sizes)}, sender_bytes={})
    decoded = decode_batch(encode_batch(batch, version=FPREC_VERSION_BINARY))
    for original, roundtripped in zip(sizes, decoded.records[0].port_bytes.values()):
        assert roundtripped == original
        assert math.copysign(1, roundtripped) == math.copysign(1, original)


def test_v2_segment_decode_matches_records():
    batch = make_batch(n_leaves=3)
    segment = decode_batch_segment(encode_batch(batch, version=FPREC_VERSION_BINARY))
    assert segment.job_id == batch.job_id
    assert segment.n_records == 3
    assert segment.records() == list(batch.records)
    # the v1 line columnarizes to the same thing
    assert decode_batch_segment(encode_batch(batch)).records() == list(batch.records)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_v2_non_finite_rejected_on_encode(bad):
    batch = make_batch(port_bytes={0: bad})
    with pytest.raises(CodecError, match="non-finite"):
        encode_batch(batch, version=FPREC_VERSION_BINARY)


def test_unknown_write_version_rejected():
    with pytest.raises(UnsupportedVersionError, match="cannot encode"):
        encode_batch(make_batch(), version=3)
    with pytest.raises(UnsupportedVersionError):
        encode_job(job_config(), version=0)
    with pytest.raises(UnsupportedVersionError):
        write_fprec(io.StringIO(), [job_config()], [], version=5)


def test_future_binary_version_is_typed_error():
    frame = bytearray(encode_batch(make_batch(), version=FPREC_VERSION_BINARY))
    frame[4] = FPREC_VERSION_BINARY + 1
    with pytest.raises(UnsupportedVersionError, match="version"):
        decode_batch(bytes(frame))


# ----------------------------------------------------------------------
# peek_batch fast-path regressions (magic/version at fixed positions)
# ----------------------------------------------------------------------
def test_peek_rejects_wrong_magic_line():
    """A garbage-magic line with a batch-shaped prefix must not be
    routed; the old fast path returned (job_id, n_records) for it."""
    line = encode_batch(make_batch(job_id=17, n_leaves=4))
    doctored = line.replace('["fprec"', '["fprec2"', 1)
    with pytest.raises(CodecError, match="magic"):
        peek_batch(doctored)


def test_peek_rejects_future_version_line():
    payload = json.loads(encode_batch(make_batch(job_id=17)))
    payload[1] = FPREC_VERSION_BINARY + 7
    with pytest.raises(UnsupportedVersionError):
        peek_batch(json.dumps(payload, separators=(",", ":")))


def test_peek_rejects_v2_frame_with_wrong_magic():
    frame = bytearray(encode_batch(make_batch(), version=FPREC_VERSION_BINARY))
    frame[1] = ord("X")
    with pytest.raises(CodecError, match="magic"):
        peek_batch(bytes(frame))


def test_peek_rejects_future_version_frame():
    frame = bytearray(encode_batch(make_batch(), version=FPREC_VERSION_BINARY))
    frame[4] = 9
    with pytest.raises(UnsupportedVersionError):
        peek_batch(bytes(frame))


def test_peek_v2_uses_fixed_offsets():
    batch = make_batch(n_leaves=4, job_id=2**40 + 5)
    frame = encode_batch(batch, version=FPREC_VERSION_BINARY)
    assert peek_batch(frame) == (2**40 + 5, 4)


def test_peek_on_v2_job_frame_raises():
    with pytest.raises(CodecError):
        peek_batch(encode_job(job_config(), version=FPREC_VERSION_BINARY))


# ----------------------------------------------------------------------
# timestamp validation regressions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("field_index, name", [(1, "start_ns"), (2, "end_ns")])
@pytest.mark.parametrize("bad", ['"0"', "1.5", "null"])
def test_stringly_timestamps_rejected_on_decode(field_index, name, bad):
    """start_ns/end_ns go through _int_key like every other field."""
    payload = json.loads(encode_batch(make_batch(n_leaves=1)))
    entry = payload[7][0]
    entry[field_index] = json.loads(bad)
    with pytest.raises(CodecError, match=name):
        decode_batch(json.dumps(payload, separators=(",", ":")))


def test_timestamps_round_trip_v1_and_v2():
    record = make_record()
    assert record.start_ns == 100 and record.end_ns == 5_000
    batch = RecordBatch.from_records([record])
    for version in (FPREC_VERSION, FPREC_VERSION_BINARY):
        decoded = decode_batch(encode_batch(batch, version=version))
        assert decoded.records[0].start_ns == 100
        assert decoded.records[0].end_ns == 5_000


def test_non_int_timestamp_rejected_on_encode():
    record = IterationRecord(
        leaf=0,
        tag=FlowTag(job_id=1, iteration=0),
        port_bytes={0: 10},
        sender_bytes={},
        start_ns=0.5,  # float timestamp: must not encode
        end_ns=1,
    )
    with pytest.raises(CodecError, match="start_ns"):
        encode_batch(RecordBatch.from_records([record]))


# ----------------------------------------------------------------------
# decode_job field validation regressions
# ----------------------------------------------------------------------
def _job_dict(**overrides):
    data = json.loads(encode_job(job_config()))[3]
    data.update(overrides)
    return data


def _job_line(data):
    return json.dumps(["fprec", 1, "j", data], separators=(",", ":"))


def test_unknown_job_field_named_in_error():
    line = _job_line(_job_dict(priority=3, owner="infra"))
    with pytest.raises(CodecError, match="'owner', 'priority'"):
        decode_job(line)
    with pytest.raises(CodecError, match="newer writer"):
        decode_job(line)


def test_unknown_experiment_field_named_in_error():
    data = _job_dict()
    data["experiment"]["oversubscription"] = 2
    with pytest.raises(CodecError, match="'oversubscription'"):
        decode_job(_job_line(data))


def test_unknown_job_field_not_a_bare_typeerror():
    line = _job_line(_job_dict(shiny_new_field=1))
    try:
        decode_job(line)
    except TypeError:  # pragma: no cover - the regression this guards
        pytest.fail("unknown job field must not surface as TypeError")
    except CodecError as exc:
        assert "shiny_new_field" in str(exc)


def test_missing_job_id_named_in_error():
    data = _job_dict()
    del data["job_id"]
    with pytest.raises(CodecError, match="job_id"):
        decode_job(_job_line(data))


def test_missing_experiment_named_in_error():
    data = _job_dict()
    del data["experiment"]
    with pytest.raises(CodecError, match="experiment"):
        decode_job(_job_line(data))


def test_job_payload_must_be_object():
    with pytest.raises(CodecError, match="JSON object"):
        decode_job('["fprec",1,"j",[1,2,3]]')


def test_v2_job_field_validation_applies():
    """The v2 job frame carries the same JSON document, so the same
    field validation fires."""
    frame = bytearray(encode_job(job_config(), version=FPREC_VERSION_BINARY))
    # splice an unknown key into the JSON payload and fix the length
    body = bytes(frame[12:]).replace(b'{"job_id"', b'{"bogus":1,"job_id"')
    import struct

    header = struct.pack("<4sBBHI", BINARY_MAGIC, FPREC_VERSION_BINARY, ord("j"), 0, len(body))
    with pytest.raises(CodecError, match="bogus"):
        decode_job(header + body)


# ----------------------------------------------------------------------
# mixed-version .fprec files
# ----------------------------------------------------------------------
def test_fprec_v2_file_round_trip(tmp_path):
    jobs = [job_config(job_id=1), job_config(job_id=2, faulted=False)]
    batches = [make_batch(job_id=1, iteration=i) for i in range(3)]
    path = tmp_path / "stream.fprec"
    n_units = write_fprec(path, jobs, batches, version=FPREC_VERSION_BINARY)
    assert n_units == 5
    content = read_fprec(path)
    assert content.jobs == jobs
    assert content.batches == batches


def test_fprec_mixed_version_file(tmp_path):
    """v1 lines and v2 frames interleave freely in one stream."""
    job = job_config(job_id=1)
    batches = [make_batch(job_id=1, iteration=i) for i in range(4)]
    path = tmp_path / "mixed.fprec"
    with open(path, "wb") as handle:
        write_fprec(handle, [job], batches[:1], version=FPREC_VERSION_BINARY)
        write_fprec(handle, [], batches[1:2], version=FPREC_VERSION)
        write_fprec(handle, [], batches[2:3], version=FPREC_VERSION_BINARY)
        write_fprec(handle, [], batches[3:], version=FPREC_VERSION)
    content = read_fprec(path)
    assert content.jobs == [job]
    assert content.batches == batches


def test_v2_to_text_stream_rejected():
    with pytest.raises(CodecError, match="binary"):
        write_fprec(io.StringIO(), [job_config()], [], version=FPREC_VERSION_BINARY)


def test_fprec_binary_stream_io():
    buffer = io.BytesIO()
    write_fprec(buffer, [job_config()], [make_batch(job_id=4)], version=FPREC_VERSION_BINARY)
    buffer.seek(0)
    content = read_fprec(buffer)
    assert content.job_ids() == [4]
    assert len(content.batches) == 1
