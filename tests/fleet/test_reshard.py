"""Live resharding: grow/shrink the pool mid-run without losing work.

The invariant under any sequence of grows and shrinks:
``processed + shed == submitted`` (counted in unique records), verdict
parity with the uninterrupted reference, and minimal movement — only
jobs whose ring owner actually changed are handed off.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetConfig, reference_verdicts
from repro.fleet.ha import HAConfig, HAFleetService, grow, shrink
from repro.fleet.shard import FleetError


def ha_service(n_shards: int) -> HAFleetService:
    return HAFleetService(
        FleetConfig(n_shards=n_shards, return_verdicts=True),
        ha=HAConfig(heartbeat_every=None, auto_failover=False),
    )


def assert_parity(result, jobs, batches):
    reference = reference_verdicts(jobs, batches)
    for job in jobs:
        assert result.verdicts_for(job.job_id) == reference[job.job_id]
    assert result.lost_records == 0
    assert result.accounting_ok


def test_grow_mid_run_preserves_parity(small_workload):
    jobs, batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        third = len(batches) // 3
        for batch in batches[:third]:
            service.submit(batch)
        report = grow(service, n_new=1)
        assert report.shards_before == (0, 1)
        assert report.shards_after == (0, 1, 2)
        assert report.epoch_after == report.epoch_before + 1
        for batch in batches[third:]:
            service.submit(batch)
    assert_parity(service.result, jobs, batches)


def test_shrink_mid_run_preserves_parity(small_workload):
    jobs, batches = small_workload
    service = ha_service(3)
    with service:
        for job in jobs:
            service.submit_job(job)
        half = len(batches) // 2
        for batch in batches[:half]:
            service.submit(batch)
        report = shrink(service, 1)
        assert report.shards_after == (0, 2)
        assert sorted(service._live_shards) == [0, 2]
        for batch in batches[half:]:
            service.submit(batch)
    assert_parity(service.result, jobs, batches)
    assert service.result.epoch == 2


def test_grow_then_shrink_round_trip(small_workload):
    jobs, batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        third = len(batches) // 3
        for batch in batches[:third]:
            service.submit(batch)
        grow(service, n_new=2)  # 2 -> 4
        for batch in batches[third : 2 * third]:
            service.submit(batch)
        shrink(service, 0)  # 4 -> 3, retire an original shard
        for batch in batches[2 * third :]:
            service.submit(batch)
    result = service.result
    assert_parity(result, jobs, batches)
    assert result.epoch == 3
    reports = service.ha_log.of_type("ha.reshard")
    assert [event["reason"] for event in reports] == ["grow:+2", "shrink:0"]


def test_grow_moves_only_jobs_whose_owner_changed(small_workload):
    """Minimal movement: consistent hashing means growing the pool only
    hands off jobs the wider ring actually assigns to a new owner."""
    jobs, _batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        before = {job.job_id: service._route(job.job_id) for job in jobs}
        report = grow(service, n_new=1)
        after = {job.job_id: service._route(job.job_id) for job in jobs}
        changed = {j for j in before if before[j] != after[j]}
        assert set(report.moved_jobs) == changed
        # Every move lands on the new shard — survivors never swap
        # jobs among themselves.
        assert all(after[j] == 2 for j in changed)


def test_shrink_moves_exactly_the_retirees_jobs(small_workload):
    jobs, _batches = small_workload
    service = ha_service(3)
    with service:
        for job in jobs:
            service.submit_job(job)
        owned = sorted(
            job.job_id for job in jobs if service._route(job.job_id) == 2
        )
        report = shrink(service, 2)
        assert sorted(report.moved_jobs) == owned


def test_shrink_rejects_last_shard_and_unknown_shard(small_workload):
    jobs, _batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        with pytest.raises(FleetError):
            shrink(service, 9)
        shrink(service, 1)
        with pytest.raises(FleetError):
            shrink(service, 0)


def test_grow_requires_positive_count(small_workload):
    service = ha_service(2)
    with service:
        with pytest.raises(FleetError):
            grow(service, n_new=0)


def test_reshard_report_accounting(small_workload):
    jobs, batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        for batch in batches[: len(batches) // 2]:
            service.submit(batch)
        report = grow(service, n_new=1)
        assert report.moved == len(report.moved_jobs)
        if report.moved:
            # Moved jobs had journaled history: the handoff replayed it.
            assert report.replayed_units > 0
        else:
            assert report.replayed_units == 0
        for batch in batches[len(batches) // 2 :]:
            service.submit(batch)
    assert_parity(service.result, jobs, batches)
