"""Routing tests: determinism, spread, and consistency of the ring."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.fleet import FleetError, ShardRouter, build_monitor, describe_assignment
from repro.fleet.codec import JobConfig

JOB_IDS = list(range(1, 201))


def test_router_is_deterministic_across_instances():
    a = ShardRouter(4)
    b = ShardRouter(4)
    assert a.assignment(JOB_IDS) == b.assignment(JOB_IDS)


def test_router_rejects_bad_config():
    with pytest.raises(FleetError):
        ShardRouter(0)
    with pytest.raises(FleetError):
        ShardRouter(2, n_replicas=0)


def test_every_shard_gets_work():
    for n_shards in (2, 3, 4, 8):
        assignment = describe_assignment(ShardRouter(n_shards), JOB_IDS)
        assert assignment.min_load > 0, f"an empty shard at n_shards={n_shards}"
        assert sum(assignment.jobs_per_shard.values()) == len(JOB_IDS)


def test_spread_is_roughly_balanced():
    assignment = describe_assignment(ShardRouter(4), JOB_IDS)
    mean = len(JOB_IDS) / 4
    assert assignment.max_load < 2.5 * mean


def test_consistency_under_shard_growth():
    """Growing N -> N+1 shards must move a minority of jobs (the point
    of consistent hashing; modulo hashing moves nearly all of them)."""
    before = ShardRouter(4).assignment(JOB_IDS)
    after = ShardRouter(5).assignment(JOB_IDS)
    moved = sum(1 for job in JOB_IDS if before[job] != after[job])
    assert moved / len(JOB_IDS) < 0.5
    # and jobs that moved all moved to the new shard's territory or by
    # ring adjacency, never a global reshuffle
    assert moved > 0  # the new shard did take over something


def test_shard_for_range():
    router = ShardRouter(3)
    for job in JOB_IDS:
        assert 0 <= router.shard_for(job) < 3


def test_build_monitor_is_deterministic():
    experiment = ExperimentConfig(n_leaves=6, n_spines=3, job_id=5)
    job = JobConfig(job_id=5, experiment=experiment, base_seed=3, trial=5)
    first = build_monitor(job)
    second = build_monitor(job)
    prediction_a = first.predictor.predict()
    prediction_b = second.predictor.predict()
    for leaf in range(experiment.n_leaves):
        assert prediction_a.for_leaf(leaf).port_bytes == prediction_b.for_leaf(leaf).port_bytes
