"""Service tests: golden parity, backpressure, metrics, validation."""

from __future__ import annotations

import pytest

from repro.fleet import (
    FleetConfig,
    FleetError,
    FleetService,
    encode_batch,
    reference_verdicts,
    serve_workload,
)


def metric(result, name, label=None):
    total = 0
    for entry in result.metrics:
        if entry.get("name") != name:
            continue
        if label is not None and entry["labels"].get("shard") != label:
            continue
        total += entry["value"]
    return total


# ----------------------------------------------------------------------
# Golden parity: the non-negotiable
# ----------------------------------------------------------------------
@pytest.mark.parametrize("wire_version", [1, 2])
@pytest.mark.parametrize("n_shards", [1, 2, 3])
def test_golden_parity_across_shard_counts(small_workload, n_shards, wire_version):
    """Streaming through the service yields bit-identical verdict
    sequences to a direct single-process monitor feed — at every shard
    count and both wire versions."""
    jobs, batches = small_workload
    reference = reference_verdicts(jobs, batches)
    result = serve_workload(
        jobs,
        batches,
        FleetConfig(
            n_shards=n_shards, return_verdicts=True, wire_version=wire_version
        ),
    )
    assert result.errors == []
    for job in jobs:
        got = result.verdicts_for(job.job_id)
        want = reference[job.job_id]
        assert len(got) == len(want)
        assert got == want, f"verdicts diverge for job {job.job_id}"


def test_golden_parity_with_tiny_queue(small_workload):
    """Queue depth must not affect results under the block policy."""
    jobs, batches = small_workload
    reference = reference_verdicts(jobs, batches)
    result = serve_workload(
        jobs,
        batches,
        FleetConfig(n_shards=2, queue_depth=1, policy="block", return_verdicts=True),
    )
    for job in jobs:
        assert result.verdicts_for(job.job_id) == reference[job.job_id]


@pytest.mark.parametrize("wire_version", [1, 2])
def test_parity_with_pre_encoded_units(small_workload, wire_version):
    """The encode -> peek -> route -> decode path is lossless for JSON
    lines and binary frames alike."""
    jobs, batches = small_workload
    reference = reference_verdicts(jobs, batches)
    units = [encode_batch(batch, version=wire_version) for batch in batches]
    result = serve_workload(
        jobs, units, FleetConfig(n_shards=2, return_verdicts=True)
    )
    for job in jobs:
        assert result.verdicts_for(job.job_id) == reference[job.job_id]


def test_parity_with_coalescing_disabled(small_workload):
    """coalesce=1 degenerates to one-batch-at-a-time scoring; verdicts
    must not depend on how the worker groups its wake-ups."""
    jobs, batches = small_workload
    reference = reference_verdicts(jobs, batches)
    result = serve_workload(
        jobs,
        batches,
        FleetConfig(n_shards=2, return_verdicts=True, wire_version=2, coalesce=1),
    )
    for job in jobs:
        assert result.verdicts_for(job.job_id) == reference[job.job_id]


def test_config_rejects_bad_wire_version_and_coalesce():
    with pytest.raises(FleetError, match="wire version"):
        FleetConfig(wire_version=3)
    with pytest.raises(FleetError, match="coalesce"):
        FleetConfig(coalesce=0)


def test_config_rejects_non_positive_quiet_gap():
    with pytest.raises(FleetError, match="quiet_gap"):
        FleetConfig(quiet_gap=0)


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_block_policy_never_loses_records(small_workload):
    jobs, batches = small_workload
    result = serve_workload(
        jobs, batches, FleetConfig(n_shards=2, queue_depth=2, policy="block")
    )
    assert result.shed_records == 0
    assert result.processed_records == result.submitted_records
    assert result.processed_batches == len(batches)


def test_shed_oldest_counts_drops_and_completes(small_workload):
    """A one-deep queue forces shedding; the run still completes, every
    drop is counted, and accounting balances exactly."""
    jobs, batches = small_workload
    result = serve_workload(
        jobs,
        batches,
        FleetConfig(n_shards=1, queue_depth=1, policy="shed-oldest"),
    )
    assert result.shed_records > 0
    assert result.processed_records + result.shed_records == result.submitted_records
    assert metric(result, "fleet.shed_records") == result.shed_records


def test_shed_never_drops_job_registrations(small_workload):
    """Control messages survive shedding: every job's monitor exists, so
    no batch lands in the unknown-job counter."""
    jobs, batches = small_workload
    result = serve_workload(
        jobs,
        batches,
        FleetConfig(n_shards=1, queue_depth=1, policy="shed-oldest"),
    )
    assert metric(result, "fleet.unknown_job_batches") == 0


def test_config_validation():
    with pytest.raises(FleetError):
        FleetConfig(n_shards=0)
    with pytest.raises(FleetError):
        FleetConfig(queue_depth=0)
    with pytest.raises(FleetError):
        FleetConfig(policy="drop-newest")


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_fleet_metrics_snapshot(small_workload):
    jobs, batches = small_workload
    result = serve_workload(jobs, batches, FleetConfig(n_shards=2))
    total_records = sum(batch.n_records for batch in batches)
    assert metric(result, "fleet.records") == total_records
    assert metric(result, "fleet.batches") == len(batches)
    assert metric(result, "fleet.submitted_records") == total_records
    # per-shard detection latency histograms made it across the process
    # boundary and cover every batch
    latency = [
        entry
        for entry in result.metrics
        if entry.get("name") == "fleet.detection_latency_s"
    ]
    assert len(latency) == 2
    assert sum(entry["count"] for entry in latency) == len(batches)
    assert all(entry["sum"] >= 0.0 for entry in latency)
    # queue depth was sampled at the frontend
    depth_samples = [
        entry
        for entry in result.metrics
        if entry.get("name") == "fleet.queue_depth_samples"
    ]
    assert depth_samples and depth_samples[0]["count"] == len(batches)


# ----------------------------------------------------------------------
# Validation and incidents
# ----------------------------------------------------------------------
def test_validation_against_ground_truth(small_workload):
    jobs, batches = small_workload
    result = serve_workload(jobs, batches, FleetConfig(n_shards=2))
    validation = result.validate()
    assert validation.checked == len(jobs)
    assert validation.ok, (validation.missed, validation.false_alarms)
    faulted = {job.job_id for job in jobs if job.faulted}
    assert {incident.job_id for incident in result.incidents} == faulted


def test_incidents_deduplicate_iterations(small_workload):
    """A persistent fault alarms many iterations but yields one incident
    per (job, link), with the span rolled up."""
    jobs, batches = small_workload
    result = serve_workload(jobs, batches, FleetConfig(n_shards=2))
    keys = [(incident.job_id, incident.link) for incident in result.incidents]
    assert len(keys) == len(set(keys))
    assert any(incident.n_iterations > 1 for incident in result.incidents)
    for incident in result.incidents:
        assert incident.first_seen <= incident.last_seen
        assert incident.worst_deviation < 0  # deficits are negative


def test_faulted_job_incident_names_the_injected_link(small_workload):
    jobs, batches = small_workload
    result = serve_workload(jobs, batches, FleetConfig(n_shards=2))
    for job in jobs:
        if job.faulted:
            links = {incident.link for incident in result.incidents_for(job.job_id)}
            assert job.fault_link in links


def test_incident_log_lifecycle(small_workload):
    jobs, batches = small_workload
    result = serve_workload(jobs, batches, FleetConfig(n_shards=2))
    log = result.incident_log
    assert log is not None
    opened = log.of_type("incident.opened")
    closed = log.of_type("incident.closed")
    assert len(opened) == len(result.incidents)
    assert len(closed) == len(result.incidents)


# ----------------------------------------------------------------------
# Protocol robustness
# ----------------------------------------------------------------------
def test_unknown_job_batches_counted_not_fatal(small_workload):
    jobs, batches = small_workload
    stranger = [batch for batch in batches if batch.job_id == jobs[0].job_id]
    result = serve_workload(jobs[1:], stranger + batches[:0], FleetConfig(n_shards=1))
    assert metric(result, "fleet.unknown_job_batches") == len(stranger)
    assert result.errors == []


def test_malformed_line_reported_not_fatal(small_workload):
    jobs, batches = small_workload
    service = FleetService(FleetConfig(n_shards=1))
    with service:
        for job in jobs:
            service.submit_job(job)
        # declares two records but carries none: decodes must fail in the
        # worker, be reported, and not take the shard down
        service.submit_encoded('["fprec",1,"b",%d,2,0,"allreduce",[]]' % jobs[0].job_id)
        for batch in batches[:3]:
            service.submit(batch)
    result = service.result
    assert result.processed_batches == 3  # the good ones still flowed
    assert len(result.errors) == 1
    assert metric(result, "fleet.worker_errors") == 1


def test_submit_before_start_raises(small_workload):
    jobs, batches = small_workload
    service = FleetService(FleetConfig(n_shards=1))
    with pytest.raises(FleetError, match="not started"):
        service.submit(batches[0])
    with pytest.raises(FleetError, match="not started"):
        service.submit_job(jobs[0])
