"""Shared fixtures for the fleet service tests.

The workload is generated once per session (fastsim runs are cheap but
not free) and shared read-only: every consumer streams copies of the
frozen batches, never mutates them.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.fleet import LoadGenConfig, generate_workload

#: Small fabric with collectives big enough that spray noise sits well
#: under the 1 % threshold (tiny collectives alarm on noise alone).
SMALL_EXPERIMENT = ExperimentConfig(
    n_leaves=6, n_spines=3, collective_bytes=1024 * 1024 * 1024
)

SMALL_LOADGEN = LoadGenConfig(
    n_jobs=5,
    n_iterations=6,
    fault_fraction=0.4,
    base_seed=7,
    experiment=SMALL_EXPERIMENT,
)


@pytest.fixture(scope="session")
def small_workload():
    """``(jobs, batches)`` of a 5-job workload with 2 faulted jobs."""
    return generate_workload(SMALL_LOADGEN)
