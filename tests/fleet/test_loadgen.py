"""Load-generator tests: determinism, ground truth, record/replay."""

from __future__ import annotations

import io
from dataclasses import replace

import pytest

from repro.analysis.experiments import run_trial_with_verdict
from repro.fleet import (
    FleetError,
    LoadGenConfig,
    generate_jobs,
    generate_workload,
    read_fprec,
    write_workload,
)
from repro.fleet.loadgen import faulted_job_ids, job_records

from .conftest import SMALL_EXPERIMENT, SMALL_LOADGEN


def test_workload_is_deterministic():
    jobs_a, batches_a = generate_workload(SMALL_LOADGEN)
    jobs_b, batches_b = generate_workload(SMALL_LOADGEN)
    assert jobs_a == jobs_b
    assert batches_a == batches_b


def test_fault_fraction_respected():
    config = replace(SMALL_LOADGEN, n_jobs=8, fault_fraction=0.25)
    jobs = generate_jobs(config)
    assert sum(1 for job in jobs if job.faulted) == 2
    assert all(job.fault_link is not None for job in jobs if job.faulted)
    assert all(job.fault_link is None for job in jobs if not job.faulted)


def test_fault_selection_changes_with_seed():
    base = replace(SMALL_LOADGEN, n_jobs=12, fault_fraction=0.5)
    first = faulted_job_ids(base)
    second = faulted_job_ids(replace(base, base_seed=base.base_seed + 1))
    assert first != second


def test_zero_and_full_fault_fractions():
    none = generate_jobs(replace(SMALL_LOADGEN, fault_fraction=0.0))
    assert not any(job.faulted for job in none)
    everyone = generate_jobs(replace(SMALL_LOADGEN, fault_fraction=1.0))
    assert all(job.faulted for job in everyone)


def test_batches_interleaved_round_robin(small_workload):
    jobs, batches = small_workload
    n_jobs = len(jobs)
    first_wave = batches[:n_jobs]
    assert [batch.iteration for batch in first_wave] == [0] * n_jobs
    assert [batch.job_id for batch in first_wave] == [job.job_id for job in jobs]
    second_wave = batches[n_jobs : 2 * n_jobs]
    assert [batch.iteration for batch in second_wave] == [1] * n_jobs


def test_job_records_match_direct_trial():
    """A generated job's stream is the same record stream its direct
    single-job trial would see — fleet results are comparable to trial
    results by construction."""
    config = SMALL_LOADGEN
    job = next(job for job in generate_jobs(config) if job.faulted)
    batches = job_records(config, job)
    _outcome, verdict = run_trial_with_verdict(
        job.experiment, injected=True, base_seed=job.base_seed, trial=job.trial
    )
    assert len(verdict.verdicts) == len(batches)
    # same fault, same stream: the direct trial's verdict on this stream
    # exists; spot-check alignment through the batch tags
    for iteration, batch in enumerate(batches):
        assert batch.iteration == iteration
        assert batch.job_id == job.job_id


def test_invalid_config_rejected():
    with pytest.raises(FleetError):
        LoadGenConfig(n_jobs=0)
    with pytest.raises(FleetError):
        LoadGenConfig(n_iterations=0)
    with pytest.raises(FleetError):
        LoadGenConfig(fault_fraction=1.5)


def test_write_workload_round_trips():
    config = replace(SMALL_LOADGEN, n_jobs=3, n_iterations=2)
    buffer = io.StringIO()
    jobs, n_lines = write_workload(config, buffer)
    assert n_lines == 3 + 3 * 2
    buffer.seek(0)
    content = read_fprec(buffer)
    assert content.jobs == jobs
    _jobs, batches = generate_workload(config)
    assert content.batches == batches


def test_default_experiment_template():
    config = LoadGenConfig(n_jobs=2, n_iterations=4)
    template = config.template()
    assert template.n_iterations == 4
    jobs = generate_jobs(config)
    assert [job.experiment.job_id for job in jobs] == [1, 2]
    assert all(job.experiment.n_iterations == 4 for job in jobs)


def test_template_overrides_iterations():
    config = LoadGenConfig(
        n_jobs=2, n_iterations=7, experiment=replace(SMALL_EXPERIMENT, n_iterations=99)
    )
    assert config.template().n_iterations == 7
