"""HA fleet: failover parity — the subsystem's load-bearing guarantee.

Killing any single shard worker mid-run must yield bit-identical
:class:`IterationVerdict` sequences and an identical incident rollup
(no duplicates, no gaps) versus an uninterrupted run on the same seed,
with zero lost records.  The kill is deterministic: SIGKILL a chosen
shard after a chosen fraction of the stream, then an explicit
``check_health`` drives detection and journal replay.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.fleet import FleetConfig, reference_verdicts
from repro.fleet.ha import HAConfig, HAFleetService, HeartbeatMonitor
from repro.fleet.shard import FleetError


def ha_service(n_shards: int, **ha_overrides) -> HAFleetService:
    """An HA service tuned for deterministic tests: no wall-clock
    failure detection, health checks driven explicitly."""
    defaults = dict(heartbeat_every=None, auto_failover=False)
    defaults.update(ha_overrides)
    return HAFleetService(
        FleetConfig(n_shards=n_shards, return_verdicts=True),
        ha=HAConfig(**defaults),
    )


def incident_rollup(result) -> list[dict]:
    return [incident.to_event() for incident in result.incidents]


def run_with_kill(jobs, batches, n_shards: int, victim: int, kill_at: int):
    """Stream the workload, SIGKILL ``victim`` after ``kill_at``
    batches, fail over, and finish the stream."""
    service = ha_service(n_shards)
    service.start()
    try:
        for job in jobs:
            service.submit_job(job)
        for batch in batches[:kill_at]:
            service.submit(batch)
        worker = service._workers[victim]
        os.kill(worker.pid, signal.SIGKILL)
        worker.join(timeout=10.0)
        recovered = service.check_health()
        assert recovered == [victim]
        for batch in batches[kill_at:]:
            service.submit(batch)
    except BaseException:
        service._abort()
        raise
    return service.close()


@pytest.mark.parametrize("n_shards", [2, 3])
def test_killing_any_shard_preserves_verdict_and_incident_parity(
    n_shards, small_workload
):
    """The acceptance criterion: for shard counts 2 and 3, kill *each*
    shard in turn mid-stream and compare against the uninterrupted
    reference."""
    jobs, batches = small_workload
    reference = reference_verdicts(jobs, batches)
    for victim in range(n_shards):
        result = run_with_kill(
            jobs, batches, n_shards, victim=victim, kill_at=len(batches) // 2
        )
        assert result.failovers == 1
        assert result.errors == []
        for job in jobs:
            assert result.verdicts_for(job.job_id) == reference[job.job_id], (
                f"verdict divergence for job {job.job_id} after killing "
                f"shard {victim}/{n_shards}"
            )
        assert result.lost_records == 0
        assert result.accounting_ok


def test_incident_rollup_identical_after_failover(small_workload):
    """No duplicate ``incident.opened``, no gaps: the full incident
    lifecycle (rollups and reopened counters) matches an uninterrupted
    run exactly."""
    jobs, batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        for batch in batches:
            service.submit(batch)
    undisturbed = service.result
    disturbed = run_with_kill(jobs, batches, 2, victim=1, kill_at=len(batches) // 3)
    assert incident_rollup(disturbed) == incident_rollup(undisturbed)
    opened = disturbed.incident_log.of_type("incident.opened")
    keys = [(event["job_id"], event["link"]) for event in opened]
    assert len(keys) == len(set(keys)), "duplicate incident.opened after replay"
    assert disturbed.validate().ok


def test_failover_replays_the_dead_shards_journal(small_workload):
    jobs, batches = small_workload
    result = run_with_kill(jobs, batches, 2, victim=0, kill_at=len(batches))
    # Killed after the whole stream: everything queued on the victim
    # that had not been scored yet was recovered through the journal.
    assert result.failovers == 1
    assert result.replayed_records > 0
    assert result.epoch == 2
    assert result.lost_records == 0


def test_process_exit_detected_by_check_health(small_workload):
    jobs, batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        assert service.check_health() == []
        worker = service._workers[1]
        os.kill(worker.pid, signal.SIGKILL)
        worker.join(timeout=10.0)
        assert service.check_health() == [1]
        assert service.epoch == 2
        assert sorted(service._live_shards) == [0]
        for batch in batches:
            service.submit(batch)
    assert service.result.validate().ok
    assert service.result.lost_records == 0


def test_auto_failover_recovers_during_submit(small_workload):
    """With auto_failover on, the ingest path itself detects the dead
    worker (poll-side health check) and ingest never wedges."""
    jobs, batches = small_workload
    service = HAFleetService(
        FleetConfig(n_shards=2, return_verdicts=True, queue_depth=4),
        ha=HAConfig(heartbeat_every=None, auto_failover=True, dispatch_retry_s=0.05),
    )
    reference = reference_verdicts(jobs, batches)
    with service:
        for job in jobs:
            service.submit_job(job)
        os.kill(service._workers[0].pid, signal.SIGKILL)
        service._workers[0].join(timeout=10.0)
        for batch in batches:
            service.submit(batch)
    result = service.result
    assert result.failovers == 1
    assert result.lost_records == 0
    for job in jobs:
        assert result.verdicts_for(job.job_id) == reference[job.job_id]


def test_cannot_fail_over_the_last_shard(small_workload):
    jobs, _batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        service.failover(0, reason="test")
        with pytest.raises(FleetError):
            service.failover(1, reason="test")


def test_failover_of_non_live_shard_rejected(small_workload):
    service = ha_service(2)
    with service:
        with pytest.raises(FleetError):
            service.failover(7)


def test_ha_events_record_the_failover(small_workload):
    jobs, batches = small_workload
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        for batch in batches[: len(batches) // 2]:
            service.submit(batch)
        service.failover(0, reason="drill")
    events = service.ha_log.of_type("ha.failover")
    assert len(events) == 1
    assert events[0]["shard"] == 0
    assert events[0]["reason"] == "drill"
    assert events[0]["epoch"] == 2
    views = service.ha_log.of_type("ha.view_committed")
    assert [event["epoch"] for event in views] == [1, 2]


def test_pin_job_overrides_the_ring_and_hands_off(small_workload):
    jobs, batches = small_workload
    reference = reference_verdicts(jobs, batches)
    service = ha_service(2)
    with service:
        for job in jobs:
            service.submit_job(job)
        half = len(batches) // 2
        for batch in batches[:half]:
            service.submit(batch)
        target_job = jobs[0].job_id
        old = service._route(target_job)
        new = 1 - old
        view = service.pin_job(target_job, new)
        assert view.pin_map[target_job] == new
        assert service._route(target_job) == new
        for batch in batches[half:]:
            service.submit(batch)
    result = service.result
    assert result.lost_records == 0
    for job in jobs:
        assert result.verdicts_for(job.job_id) == reference[job.job_id]


# ----------------------------------------------------------------------
# Heartbeat monitor (pure bookkeeping)
# ----------------------------------------------------------------------
def test_heartbeat_monitor_counts_missed_intervals():
    monitor = HeartbeatMonitor(interval=1.0, miss_limit=3)
    monitor.watch(0, now=100.0)
    assert monitor.misses(0, now=100.5) == 0
    assert monitor.misses(0, now=102.5) == 2
    monitor.beat(0, seq=1, now=102.0)
    assert monitor.misses(0, now=102.5) == 0
    assert monitor.overdue(now=105.5) == [0]
    monitor.unwatch(0)
    assert monitor.overdue(now=200.0) == []


def test_heartbeat_monitor_ignores_stale_beats():
    monitor = HeartbeatMonitor(interval=1.0, miss_limit=2)
    monitor.watch(0, now=100.0)
    monitor.beat(0, seq=2, now=105.0)
    monitor.beat(0, seq=1, now=101.0)  # late arrival must not rewind
    assert monitor.misses(0, now=105.5) == 0
    monitor.beat(7, seq=1, now=105.0)  # unwatched shard: ignored
    assert monitor.misses(7, now=200.0) == 0


def test_heartbeat_timeout_triggers_failover(small_workload):
    """A worker that stops beating (but has not exited) is declared
    dead once ``miss_limit`` intervals pass."""
    jobs, batches = small_workload
    service = HAFleetService(
        FleetConfig(n_shards=2, return_verdicts=True),
        ha=HAConfig(heartbeat_every=0.05, miss_limit=3, auto_failover=False),
    )
    with service:
        for job in jobs:
            service.submit_job(job)
        # A clock far in the future makes every live worker overdue;
        # the detector must terminate and recover exactly one (the
        # first), after which only one shard remains and the second
        # cannot be failed over.
        deadline = time.time() + 3600.0
        recovered = service.check_health(now=deadline)
        assert recovered == [0]
        for batch in batches:
            service.submit(batch)
    assert service.result.failovers == 1
    assert service.result.validate().ok


def test_result_ledger_shapes(small_workload):
    jobs, batches = small_workload
    service = ha_service(3)
    with service:
        for job in jobs:
            service.submit_job(job)
        for batch in batches:
            service.submit(batch)
    result = service.result
    assert result.epoch == 1
    assert result.failovers == 0
    assert result.duplicate_verdicts == 0
    assert result.fenced_messages == 0
    assert result.processed_unique_records == result.submitted_records
    assert result.shed_unique_records == 0
    assert result.lost_records == 0
    assert result.accounting_ok
