"""StreamDecoder: incremental framing under adversarial chunking.

The contract: for *any* split of a valid wire stream into chunks —
including one byte at a time, mid-header, mid-length-prefix, and
mid-UTF-8-character — ``feed``/``finish`` yield exactly the same unit
sequence as decoding the whole stream at once, in both decoded and raw
modes, with v1 lines and v2 frames interleaved freely.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    FPREC_VERSION_BINARY,
    CodecError,
    RecordBatch,
    StreamDecoder,
    decode_line,
    encode_batch,
    encode_job,
)
from repro.fleet.codec import _stream_unit

from .test_codec import job_config, make_batch


def mixed_units() -> list[str | bytes]:
    """An interleaved v1/v2 unit sequence: jobs and batches, both wire
    versions, on one stream."""
    units: list[str | bytes] = []
    for index in range(4):
        version = FPREC_VERSION_BINARY if index % 2 else 1
        units.append(encode_job(job_config(job_id=10 + index), version=version))
        units.append(
            encode_batch(
                make_batch(n_leaves=3, job_id=10 + index, iteration=index),
                version=version,
            )
        )
    return units


def wire_bytes(units) -> bytes:
    return b"".join(_stream_unit(unit, text=False) for unit in units)


def drain(decoder: StreamDecoder, stream: bytes, chunk_size: int) -> list:
    out = []
    for start in range(0, len(stream), chunk_size):
        out.extend(decoder.feed(stream[start : start + chunk_size]))
    out.extend(decoder.finish())
    return out


def reference_units(units) -> list:
    return [decode_line(unit) for unit in units]


# ----------------------------------------------------------------------
# Exhaustive split positions
# ----------------------------------------------------------------------
def test_every_single_split_boundary_matches_whole_stream():
    """Split the stream at every byte position into two chunks: the
    decoded unit sequence never changes."""
    units = mixed_units()
    stream = wire_bytes(units)
    want = reference_units(units)
    for cut in range(len(stream) + 1):
        decoder = StreamDecoder()
        got = decoder.feed(stream[:cut])
        got += decoder.feed(stream[cut:])
        got += decoder.finish()
        assert got == want, f"diverged when split at byte {cut}"


@pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 7, 64, 4096])
def test_fixed_chunk_sizes_match_whole_stream(chunk_size):
    units = mixed_units()
    stream = wire_bytes(units)
    assert drain(StreamDecoder(), stream, chunk_size) == reference_units(units)


def test_byte_at_a_time_raw_mode_round_trips_exact_wire_forms():
    """Raw mode must hand back the exact encoded units (v1 lines
    without their newline, v2 frames byte-identical)."""
    units = mixed_units()
    stream = wire_bytes(units)
    got = drain(StreamDecoder(raw=True), stream, 1)
    assert [kind for kind, _ in got] == ["j", "b"] * 4
    for (kind, raw), original in zip(got, units):
        assert raw == original
        assert decode_line(raw) == decode_line(original)


@given(
    chunks=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=40)
)
@settings(max_examples=60, deadline=None)
def test_random_chunking_property(chunks):
    """Any chunk-size sequence (cycled over the stream) decodes the
    same units."""
    units = mixed_units()
    stream = wire_bytes(units)
    want = reference_units(units)
    decoder = StreamDecoder()
    got = []
    position = 0
    index = 0
    while position < len(stream):
        size = chunks[index % len(chunks)]
        got.extend(decoder.feed(stream[position : position + size]))
        position += size
        index += 1
    got.extend(decoder.finish())
    assert got == want


# ----------------------------------------------------------------------
# Stream-edge behaviour
# ----------------------------------------------------------------------
def test_final_unterminated_line_is_flushed_by_finish():
    line = encode_batch(make_batch(n_leaves=2))
    decoder = StreamDecoder()
    assert decoder.feed(line.encode()) == []  # no newline yet
    (kind, batch), = decoder.finish()
    assert kind == "b"
    assert isinstance(batch, RecordBatch)


def test_truncated_binary_frame_at_end_raises():
    frame = encode_batch(
        make_batch(n_leaves=3), version=FPREC_VERSION_BINARY
    )
    decoder = StreamDecoder()
    assert decoder.feed(frame[:-1]) == []
    with pytest.raises(CodecError):
        decoder.finish()


def test_interleaved_whitespace_and_blank_lines_are_skipped():
    units = mixed_units()
    stream = b"\n\n  \r\n".join(_stream_unit(u, text=False) for u in units)
    assert drain(StreamDecoder(), stream, 13) == reference_units(units)


def test_lifetime_counters_track_units_and_bytes():
    units = mixed_units()
    stream = wire_bytes(units)
    decoder = StreamDecoder()
    drain(decoder, stream, 17)
    assert decoder.units == len(units)
    assert decoder.consumed == len(stream)
    assert decoder.buffered == 0


# ----------------------------------------------------------------------
# Buffer bounding
# ----------------------------------------------------------------------
def test_oversized_frame_declaration_fails_fast():
    frame = bytearray(
        encode_batch(make_batch(n_leaves=3), version=FPREC_VERSION_BINARY)
    )
    frame[8:12] = (2**31).to_bytes(4, "little")  # lie about the length
    decoder = StreamDecoder(max_buffer=1 << 16)
    with pytest.raises(CodecError, match="buffer cap"):
        decoder.feed(bytes(frame[:32]))  # header alone reveals the lie


def test_unterminated_line_over_cap_fails():
    decoder = StreamDecoder(max_buffer=1 << 10)
    with pytest.raises(CodecError, match="buffer cap"):
        decoder.feed(b"x" * 2048)  # no newline, over cap


def test_tiny_max_buffer_rejected():
    with pytest.raises(CodecError):
        StreamDecoder(max_buffer=4)


# ----------------------------------------------------------------------
# Error containment
# ----------------------------------------------------------------------
def test_undecodable_line_raises_codec_error_not_unicode_error():
    decoder = StreamDecoder()
    with pytest.raises(CodecError):
        decoder.feed(b"\x80\x81garbage\n")


def test_malformed_json_line_raises_codec_error():
    decoder = StreamDecoder()
    with pytest.raises(CodecError):
        decoder.feed(b'["fprec",1,"b",oops\n')
