"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SMALL = [
    "--leaves", "8",
    "--spines", "4",
    "--collective-gib", "1",
]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_detect_fault_exits_zero(capsys):
    code = main(["detect", *SMALL, "--drop-rate", "0.05"])
    out = capsys.readouterr().out
    assert code == 0
    assert "detected: True" in out
    assert "suspects:" in out


def test_detect_healthy_exits_zero(capsys):
    code = main(["detect", *SMALL, "--healthy"])
    out = capsys.readouterr().out
    assert code == 0
    assert "detected: False" in out
    assert "healthy control" in out


def test_detect_subthreshold_fault_exits_one(capsys):
    # 0.2% drop is far below the 1% threshold: a miss, exit code 1.
    code = main(["detect", *SMALL, "--drop-rate", "0.002"])
    assert code == 1


def test_roc_prints_table(capsys):
    code = main(
        [
            "roc",
            *SMALL,
            "--trials", "3",
            "--drop-rates", "0.02",
            "--thresholds", "0.01",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "FPR" in out and "TPR" in out
    assert "2.0%" in out


def test_closed_loop_recovers(capsys):
    code = main(
        [
            "closed-loop",
            *SMALL,
            "--drop-rate", "0.05",
            "--iterations", "6",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "DISABLED" in out
    assert "recovered (quiet after remediation): True" in out


def test_detect_report_flag(capsys):
    code = main(["detect", *SMALL, "--drop-rate", "0.05", "--report"])
    out = capsys.readouterr().out
    assert code == 0
    assert "INCIDENT" in out
    assert "recommended action: drain cable" in out


def test_healthy_report_flag(capsys):
    code = main(["detect", *SMALL, "--healthy", "--report"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no fault detected" in out


def test_custom_threshold_respected(capsys):
    code = main(["detect", *SMALL, "--drop-rate", "0.05", "--threshold", "0.02"])
    out = capsys.readouterr().out
    assert code == 0
    assert "threshold 2.00%" in out


def test_preexisting_faults_flag(capsys):
    code = main(
        ["detect", *SMALL, "--drop-rate", "0.05", "--preexisting", "2"]
    )
    assert code == 0


def test_sweep_prints_table_and_throughput(capsys):
    code = main(
        [
            "sweep",
            *SMALL,
            "--values", "0.01", "0.03",
            "--trials", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "sweep over drop_rate" in out
    assert "FPR" in out and "TPR" in out
    assert "trials/sec" in out


def test_sweep_parallel_matches_serial(capsys):
    args = ["sweep", *SMALL, "--values", "0.02", "--trials", "2"]
    assert main([*args, "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main([*args, "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out

    # Identical tables: jobs only changes throughput, never results.
    def table_rows(text):
        return [
            line
            for line in text.splitlines()
            if "jobs=" not in line and "trials in" not in line
        ]

    assert table_rows(serial_out) == table_rows(parallel_out)


def test_sweep_integer_parameter_casting(capsys):
    code = main(
        [
            "sweep",
            *SMALL,
            "--parameter", "n_iterations",
            "--values", "3", "4",
            "--trials", "1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "sweep over n_iterations" in out


def test_sweep_unknown_parameter_errors(capsys):
    code = main(["sweep", *SMALL, "--parameter", "bogus", "--values", "1"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown sweep parameter" in err


def test_detect_metrics_out_writes_jsonl(tmp_path, capsys):
    import json

    path = tmp_path / "metrics.jsonl"
    code = main(
        ["detect", *SMALL, "--drop-rate", "0.05", "--metrics-out", str(path)]
    )
    assert code == 0
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    types = {line["type"] for line in lines}
    assert "audit.iteration" in types
    assert "audit.leaf" in types
    assert "metric" in types


def test_detect_trace_out_is_chrome_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    code = main(
        [
            "detect",
            "--leaves", "4",
            "--spines", "2",
            "--collective-gib", "0.005",
            "--drop-rate", "0.05",
            "--trace-out", str(path),
        ]
    )
    assert code == 0
    import json

    trace = json.loads(path.read_text())
    assert trace["traceEvents"], "trace must contain events"
    assert {e["ph"] for e in trace["traceEvents"]} >= {"M", "X"}
    assert trace["otherData"]["fault_drops"] > 0


def test_sweep_metrics_out_and_progress(tmp_path, capsys):
    import json

    path = tmp_path / "sweep.jsonl"
    code = main(
        [
            "sweep",
            *SMALL,
            "--values", "0.02",
            "--trials", "2",
            "--jobs", "2",
            "--metrics-out", str(path),
            "--progress",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "worker utilization" in captured.out
    assert "[4/4]" in captured.err
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    types = {line["type"] for line in lines}
    assert {"sweep.trial", "sweep.run", "metric"} <= types
    assert len([l for l in lines if l["type"] == "sweep.trial"]) == 4


def test_roc_metrics_out(tmp_path, capsys):
    import json

    path = tmp_path / "roc.jsonl"
    code = main(
        [
            "roc",
            *SMALL,
            "--trials", "2",
            "--drop-rates", "0.02",
            "--thresholds", "0.01",
            "--metrics-out", str(path),
        ]
    )
    assert code == 0
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    trials = [l for l in lines if l["type"] == "roc.trial"]
    points = [l for l in lines if l["type"] == "roc.point"]
    assert len(trials) == 4  # 2 negatives + 2 positives
    assert len(points) == 1
    assert {"drop_rate", "threshold", "fpr", "tpr"} <= set(points[0])


def test_telemetry_flags_do_not_change_results(capsys, tmp_path):
    args = ["detect", *SMALL, "--drop-rate", "0.05"]
    assert main(args) == 0
    plain = capsys.readouterr().out
    assert main([*args, "--metrics-out", str(tmp_path / "m.jsonl")]) == 0
    instrumented = capsys.readouterr().out
    assert instrumented == plain


def test_learned_predictor_flag(capsys):
    code = main(
        [
            "detect",
            *SMALL,
            "--drop-rate", "0.05",
            "--predictor", "learned",
            "--iterations", "6",
        ]
    )
    # Learned predictor with fault from iteration 0 bakes the fault into
    # its baseline: no alarm, exit 1 — the documented caveat.
    out = capsys.readouterr().out
    assert "detected" in out
    assert code in (0, 1)


def test_closed_loop_simnet_engine_recovers(capsys):
    # Tiny packet-level run: 4x3 fabric, ~300 KB collective. Threshold
    # sits above the round-robin quantization noise for this size.
    code = main(
        [
            "closed-loop",
            "--engine", "simnet",
            "--leaves", "4",
            "--spines", "3",
            "--collective-gib", str(300_000 / (1 << 30)),
            "--mtu", "512",
            "--iterations", "6",
            "--threshold", "0.03",
            "--drop-rate", "0.5",
            "--fault-start", "1",
            "--fault-link", "up:L1->S1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "simnet closed loop" in out
    assert "ALARM" in out
    assert "DISABLED" in out and "up:L1->S1" in out
    assert "failed messages: 0" in out
    assert "recovered (quiet after remediation): True" in out


def test_chaos_command_reports_pass(capsys):
    # Seeds 0-2 draw escalating, persistent_drop, healthy under the
    # rng-driven kind selection.
    code = main(["chaos", "--scenarios", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "3/3 scenarios passed" in out
    assert "healthy" in out and "persistent_drop" in out


# ----------------------------------------------------------------------
# fleet verbs
# ----------------------------------------------------------------------
FLEET_SMALL = [
    "--jobs", "4",
    "--iterations", "5",
    "--fault-fraction", "0.5",
    "--leaves", "6",
    "--spines", "3",
    "--collective-gib", "1",
]


@pytest.fixture
def workload_path(tmp_path, capsys):
    path = tmp_path / "workload.fprec"
    code = main(["fleet", "loadgen", *FLEET_SMALL, "--out", str(path)])
    capsys.readouterr()
    assert code == 0
    return path


def test_fleet_loadgen_writes_fprec(tmp_path, capsys):
    path = tmp_path / "w.fprec"
    code = main(["fleet", "loadgen", *FLEET_SMALL, "--out", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "faulted jobs:" in out
    lines = path.read_text().splitlines()
    assert len(lines) == 4 + 4 * 5  # job configs then batches
    assert all(line.startswith('["fprec",1,') for line in lines)


def test_fleet_serve_detects_and_validates(workload_path, capsys):
    code = main(["fleet", "serve", "--input", str(workload_path), "--shards", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "incidents (" in out
    assert "missed=none" in out
    assert "false alarms=none" in out


def test_fleet_serve_writes_incident_log(workload_path, tmp_path, capsys):
    import json

    incidents = tmp_path / "incidents.jsonl"
    metrics = tmp_path / "metrics.jsonl"
    code = main(
        [
            "fleet", "serve",
            "--input", str(workload_path),
            "--incidents-out", str(incidents),
            "--fleet-metrics-out", str(metrics),
        ]
    )
    capsys.readouterr()
    assert code == 0
    events = [json.loads(line) for line in incidents.read_text().splitlines()]
    assert any(e["type"] == "incident.opened" for e in events)
    assert any(e["type"] == "incident.closed" for e in events)
    entries = [json.loads(line) for line in metrics.read_text().splitlines()]
    assert any(e["name"] == "fleet.detection_latency_s" for e in entries)


def test_fleet_replay_verifies_parity(workload_path, capsys):
    code = main(["fleet", "replay", "--input", str(workload_path), "--shards", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "golden parity" in out


def test_fleet_serve_missing_input_exits_two(tmp_path, capsys):
    code = main(["fleet", "serve", "--input", str(tmp_path / "nope.fprec")])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_fleet_serve_rejects_stream_without_jobs(tmp_path, capsys):
    path = tmp_path / "empty.fprec"
    path.write_text("")
    code = main(["fleet", "serve", "--input", str(path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "no job configs" in err


def test_fleet_serve_malformed_input_exits_two(tmp_path, capsys):
    path = tmp_path / "garbage.fprec"
    path.write_text("this is not a wire line\n")
    code = main(["fleet", "serve", "--input", str(path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_sweep_uncastable_values_exit_two(capsys):
    code = main(
        ["sweep", *SMALL, "--parameter", "n_iterations", "--values", "abc"]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot parse" in err


def test_invalid_config_is_error_not_traceback(capsys):
    # drop_rate > 1 violates ExperimentConfig validation: a clean exit-2
    # domain error, not an uncaught exception.
    code = main(["detect", *SMALL, "--drop-rate", "1.5"])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


# ----------------------------------------------------------------------
# forensics: --events-out and the report verb
# ----------------------------------------------------------------------
@pytest.fixture
def chaos_events_path(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    code = main(["chaos", "--scenarios", "2", "--events-out", str(path)])
    capsys.readouterr()
    assert code == 0
    return path


def test_chaos_events_out_brackets_scenarios(chaos_events_path):
    from repro.telemetry import read_jsonl

    events = read_jsonl(chaos_events_path)
    starts = [e for e in events if e["type"] == "scenario.start"]
    ends = [e for e in events if e["type"] == "scenario.end"]
    assert len(starts) == len(ends) == 2
    assert {e["seed"] for e in starts} == {0, 1}
    assert starts[0]["threshold"] > 0
    assert all("ok" in e and "digest" in e for e in ends)


def test_closed_loop_events_out_requires_simnet(tmp_path, capsys):
    code = main(
        ["closed-loop", *SMALL, "--events-out", str(tmp_path / "e.jsonl")]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "--engine simnet" in err


def test_closed_loop_simnet_events_out_records_remediation(tmp_path, capsys):
    from repro.telemetry import read_jsonl

    path = tmp_path / "loop.jsonl"
    code = main(
        [
            "closed-loop",
            "--engine", "simnet",
            "--leaves", "4",
            "--spines", "3",
            "--collective-gib", str(300_000 / (1 << 30)),
            "--mtu", "512",
            "--iterations", "6",
            "--threshold", "0.03",
            "--drop-rate", "0.5",
            "--fault-start", "1",
            "--fault-link", "up:L1->S1",
            "--events-out", str(path),
        ]
    )
    capsys.readouterr()
    assert code == 0
    events = read_jsonl(path)
    remediations = [e for e in events if e["type"] == "closedloop.remediation"]
    assert remediations and remediations[0]["outcome"] == "applied"
    assert remediations[0]["job_id"] == 1
    assert "up:L1->S1" in remediations[0]["links"]


def test_report_verb_builds_bundle_from_chaos_events(
    chaos_events_path, tmp_path, capsys
):
    out = tmp_path / "forensics"
    code = main(["report", str(chaos_events_path), "--out", str(out)])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "report.html" in stdout
    assert (out / "runs.csv").exists()
    assert (out / "report.html").exists()
    html = (out / "report.html").read_text()
    assert "http://" not in html and "https://" not in html


def test_report_verb_missing_input_exits_two(tmp_path, capsys):
    code = main(
        ["report", str(tmp_path / "no.jsonl"), "--out", str(tmp_path / "o")]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_report_verb_unclassifiable_input_exits_two(tmp_path, capsys):
    weird = tmp_path / "evidence.txt"
    weird.write_text("{}\n")
    code = main(["report", str(weird), "--out", str(tmp_path / "o")])
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot classify" in err


def test_report_verb_flags_dropped_lines(chaos_events_path, tmp_path, capsys):
    with open(chaos_events_path, "a") as handle:
        handle.write('{"type": "audit.le')  # truncated by a kill
    code = main(
        ["report", str(chaos_events_path), "--out", str(tmp_path / "o")]
    )
    captured = capsys.readouterr()
    assert code == 1  # data loss is a forensics finding, not a crash
    assert "malformed" in captured.err
    code = main(
        [
            "report", str(chaos_events_path),
            "--out", str(tmp_path / "o2"),
            "--strict",
        ]
    )
    assert code == 2  # strict mode treats it as unusable input
    capsys.readouterr()


# ----------------------------------------------------------------------
# greylab verb
# ----------------------------------------------------------------------
def test_greylab_single_cell_writes_csv(tmp_path, capsys):
    from repro.report.tables import read_csv

    out = tmp_path / "grey.csv"
    code = main(
        [
            "greylab",
            "--kinds", "gray_conditional",
            "--sprays", "random",
            "--levels", "none",
            "--seeds-per-cell", "1",
            "--out", str(out),
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "gray_conditional" in captured
    (row,) = read_csv(out)
    assert row["kind"] == "gray_conditional"
    assert row["spray"] == "random"
    assert row["detections"] == 1
    assert row["false_positives"] == 0


def test_greylab_rejects_unknown_spray(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["greylab", "--sprays", "zigzag"])
    capsys.readouterr()
