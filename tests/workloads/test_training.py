"""Tests for the training-job models."""

from __future__ import annotations

import pytest

from repro.units import GIB
from repro.workloads import (
    PRESETS,
    TrainingJob,
    WorkloadError,
    llama_8b,
    llama_70b,
    preset,
    small_vision_model,
)


def test_gradient_bytes():
    job = TrainingJob(name="t", n_parameters=1_000_000, grad_dtype_bytes=2)
    assert job.gradient_bytes == 2_000_000


def test_llama_8b_is_gib_scale():
    job = llama_8b()
    assert job.gradient_bytes == 16_000_000_000
    # One GiB bucket -> multiple collectives per iteration.
    assert job.buckets_per_iteration == 15
    assert job.measured_collective_bytes() == 1 * GIB


def test_llama_70b_many_buckets():
    job = llama_70b()
    assert job.buckets_per_iteration > 100


def test_small_model_single_bucket():
    job = small_vision_model()
    assert job.buckets_per_iteration == 3
    assert job.measured_collective_bytes() == 256 * 1024 * 1024


def test_tiny_model_measures_whole_gradient():
    job = TrainingJob(name="tiny", n_parameters=10_000_000)
    assert job.measured_collective_bytes() == job.gradient_bytes


def test_validation():
    with pytest.raises(WorkloadError):
        TrainingJob(name="x", n_parameters=0)
    with pytest.raises(WorkloadError):
        TrainingJob(name="x", n_parameters=10, grad_dtype_bytes=0)
    with pytest.raises(WorkloadError):
        TrainingJob(name="x", n_parameters=10, bucket_bytes=0)


def test_ring_stages_from_job():
    job = TrainingJob(name="t", n_parameters=1_000_000)
    stages = job.ring_stages(list(range(8)), allreduce=False)
    assert len(stages) == 7
    stages = job.ring_stages(list(range(8)), allreduce=True)
    assert len(stages) == 14


def test_per_edge_bytes():
    job = TrainingJob(name="t", n_parameters=500_000)  # 1 MB gradient
    # Reduce-scatter over 4 ranks: 1 MB - 250 KB = 750 KB per edge.
    assert job.per_edge_bytes(4, allreduce=False) == 750_000
    assert job.per_edge_bytes(4, allreduce=True) == 1_500_000
    with pytest.raises(WorkloadError):
        job.per_edge_bytes(1)


def test_presets_lookup():
    assert set(PRESETS) == {"llama-8b", "llama-70b", "vit-300m"}
    assert preset("llama-8b").n_parameters == 8_000_000_000
    with pytest.raises(WorkloadError):
        preset("gpt-unknown")
