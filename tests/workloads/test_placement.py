"""Tests for job placement."""

from __future__ import annotations

import pytest

from repro.topology import ClosSpec
from repro.workloads import PlacementError, jobs_share_leaves, place_jobs


SPEC = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=2)  # 16 hosts


def test_contiguous_placement():
    jobs = place_jobs(SPEC, [6, 4])
    assert jobs[0].hosts == tuple(range(6))
    assert jobs[1].hosts == tuple(range(6, 10))
    assert jobs[0].job_id == 1
    assert jobs[1].job_id == 2


def test_placement_overflow_rejected():
    with pytest.raises(PlacementError):
        place_jobs(SPEC, [10, 10])


def test_placement_zero_size_rejected():
    with pytest.raises(PlacementError):
        place_jobs(SPEC, [0, 4])


def test_ring_order_is_host_order():
    (job,) = place_jobs(SPEC, [4])
    assert job.ring() == [0, 1, 2, 3]


def test_ring_needs_two_hosts():
    (job,) = place_jobs(SPEC, [1])
    from repro.collectives import CollectiveError

    with pytest.raises(CollectiveError):
        job.ring()


def test_leaves_of_job():
    (job,) = place_jobs(SPEC, [5])
    # Hosts 0..4 sit under leaves 0, 1, 2 (two hosts per leaf).
    assert job.leaves(SPEC) == frozenset({0, 1, 2})


def test_leaf_sharing_detection():
    # 6 + 4 hosts with 2 hosts/leaf: job 1 ends mid-leaf? 6 hosts =
    # leaves 0,1,2 exactly; job 2 = hosts 6..9 -> leaves 3,4: no sharing.
    jobs = place_jobs(SPEC, [6, 4])
    assert not jobs_share_leaves(SPEC, jobs)
    # 5 + 5: job 1 covers half of leaf 2, job 2 the other half.
    jobs = place_jobs(SPEC, [5, 5])
    assert jobs_share_leaves(SPEC, jobs)


def test_custom_first_job_id():
    jobs = place_jobs(SPEC, [2, 2], first_job_id=10)
    assert [j.job_id for j in jobs] == [10, 11]


def test_strided_placement_interleaves_hosts():
    jobs = place_jobs(SPEC, [8, 8], strategy="strided")
    assert jobs[0].hosts == (0, 2, 4, 6, 8, 10, 12, 14)
    assert jobs[1].hosts == (1, 3, 5, 7, 9, 11, 13, 15)


def test_strided_placement_gives_every_job_every_leaf():
    # 8 leaves x 2 hosts: two strided 8-host jobs each own one host per
    # leaf, so every job's ring crosses every leaf uplink.
    jobs = place_jobs(SPEC, [8, 8], strategy="strided")
    for job in jobs:
        assert job.leaves(SPEC) == frozenset(range(8))
    assert jobs_share_leaves(SPEC, jobs)


def test_strided_placement_uneven_sizes():
    jobs = place_jobs(SPEC, [3, 2], strategy="strided")
    # Hosts dealt round-robin while both jobs are short: 0,1 then 2,3
    # then job 1 alone takes 4.
    assert jobs[0].hosts == (0, 2, 4)
    assert jobs[1].hosts == (1, 3)


def test_strided_placement_respects_first_job_id():
    jobs = place_jobs(SPEC, [2, 2], first_job_id=7, strategy="strided")
    assert [j.job_id for j in jobs] == [7, 8]


def test_unknown_strategy_rejected():
    with pytest.raises(PlacementError):
        place_jobs(SPEC, [2, 2], strategy="diagonal")
