"""Golden regression: the vectorized simulator is bit-identical to the
pre-vectorization reference implementation in
:mod:`repro.fastsim._reference`.

The determinism contract of the sweep engine rests on this: the
vectorized hot path may reorganise *accumulation*, but every RNG draw
— order, arguments, and therefore output bits — must be exactly what
the original per-pair loop produced.  We check record contents AND the
generator's end state, across fault configurations and seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.fastsim import (
    FabricModel,
    expected_iteration,
    run_iterations,
    simulate_iteration,
)
from repro.fastsim._reference import (
    reference_expected_iteration,
    reference_run_iterations,
    reference_simulate_iteration,
    reference_survive_probs,
)
from repro.topology import ClosSpec, down_link, up_link

SPEC = ClosSpec(n_leaves=6, n_spines=3, hosts_per_leaf=1)


def make_demand(size=500_000):
    return ring_demand(locality_optimized_ring(SPEC.n_hosts), size)


def model_configs():
    """Representative fault configurations for the golden sweep."""
    return {
        "healthy": FabricModel(SPEC),
        "silent": FabricModel(SPEC, silent={up_link(1, 2): 0.05}),
        "gray_and_silent": FabricModel(
            SPEC,
            known_gray={down_link(0, 3): 0.02},
            silent={up_link(2, 1): 0.08, down_link(2, 5): 0.01},
        ),
        "disabled_links": FabricModel(
            SPEC,
            known_disabled=frozenset({up_link(0, 0), down_link(1, 4)}),
            silent={up_link(3, 2): 0.04},
        ),
        "adaptive_spraying": FabricModel(
            SPEC, spraying="adaptive", silent={down_link(0, 2): 0.06}
        ),
        "small_mtu_remainder": FabricModel(
            SPEC, mtu=256, silent={up_link(4, 1): 0.03}
        ),
    }


def assert_records_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.leaf == w.leaf
        assert g.tag == w.tag
        assert g.port_bytes == w.port_bytes
        assert g.sender_bytes == w.sender_bytes
        assert g.start_ns == w.start_ns and g.end_ns == w.end_ns


@pytest.mark.parametrize("name", sorted(model_configs()))
@pytest.mark.parametrize("seed", [0, 7, 123])
def test_simulate_iteration_golden(name, seed):
    model = model_configs()[name]
    demand = make_demand()
    rng_new = np.random.Generator(np.random.PCG64(seed))
    rng_ref = np.random.Generator(np.random.PCG64(seed))
    got = simulate_iteration(model, demand, rng_new)
    want = reference_simulate_iteration(model, demand, rng_ref)
    assert_records_equal(got, want)
    # The RNG consumed exactly the same bitstream — downstream draws
    # (later iterations) stay aligned too.
    assert rng_new.bit_generator.state == rng_ref.bit_generator.state


@pytest.mark.parametrize("name", sorted(model_configs()))
@pytest.mark.parametrize("include_silent", [False, True])
def test_expected_iteration_golden(name, include_silent):
    model = model_configs()[name]
    demand = make_demand()
    got = expected_iteration(model, demand, include_silent=include_silent)
    want = reference_expected_iteration(model, demand, include_silent=include_silent)
    assert_records_equal(got, want)


@pytest.mark.parametrize("name", sorted(model_configs()))
def test_survive_probs_golden(name):
    model = model_configs()[name]
    control = model.control()
    for src in range(SPEC.n_leaves):
        for dst in range(SPEC.n_leaves):
            if src == dst:
                continue
            spines = control.valid_spines(src, dst)
            got = model.survive_probs(src, dst, spines)
            want = reference_survive_probs(model, src, dst, spines)
            # Bitwise equality, not allclose: cached keep factors must
            # use the exact original float expression.
            assert np.array_equal(got, want)


@pytest.mark.parametrize("seed", [0, 42])
def test_run_iterations_golden_with_fault_schedule(seed):
    model = FabricModel(SPEC, known_gray={down_link(0, 1): 0.01})
    demand = make_demand()

    def schedule(iteration):
        return {up_link(2, 0): 0.05} if iteration >= 2 else {}

    got = run_iterations(model, demand, 5, seed=seed, fault_schedule=schedule)
    want = reference_run_iterations(model, demand, 5, seed=seed, fault_schedule=schedule)
    assert len(got) == len(want)
    for g_iter, w_iter in zip(got, want):
        assert_records_equal(g_iter, w_iter)
