"""Cross-validation: fast simulator vs packet simulator vs analytics.

These tests justify using :mod:`repro.fastsim` for the paper's sweeps —
the statistical model must agree with the packet-level simulator on the
quantities FlowPulse measures (per-port volumes per iteration), and
both must match the analytical expectation in a healthy fabric.
"""

from __future__ import annotations

import numpy as np

from repro.collectives import (
    StagedCollectiveRunner,
    locality_optimized_ring,
    ring_reduce_scatter_stages,
    ring_demand,
)
from repro.fastsim import FabricModel, run_iterations
from repro.simnet import DropFault, Network
from repro.topology import ClosSpec, down_link


SPEC = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
TOTAL = 400_000
MTU = 1000


def run_packet_sim(seed, fault=None, iterations=4):
    net = Network(SPEC, seed=seed, spray="random", mtu=MTU)
    if fault:
        link, rate = fault
        net.inject_fault(link, DropFault(rate))
    collectors = net.install_collectors(job_id=1)
    ring = locality_optimized_ring(SPEC.n_hosts)
    stages = ring_reduce_scatter_stages(ring, TOTAL)
    StagedCollectiveRunner(net, 1, stages, iterations=iterations).run()
    net.finalize_collectors()
    return collectors


def run_fast_sim(seed, fault=None, iterations=4):
    silent = {fault[0]: fault[1]} if fault else {}
    model = FabricModel(SPEC, silent=silent, spraying="random", mtu=MTU)
    demand = ring_demand(locality_optimized_ring(SPEC.n_hosts), TOTAL)
    return run_iterations(model, demand, iterations, seed=seed)


def per_port_share(volumes_by_iteration):
    """Mean fraction of a leaf's traffic arriving via spine 0."""
    shares = []
    for volumes in volumes_by_iteration:
        total = sum(volumes.values())
        shares.append(volumes.get(0, 0) / total)
    return float(np.mean(shares))


def test_healthy_fabric_both_sims_split_evenly():
    packet = run_packet_sim(seed=1)
    fast = run_fast_sim(seed=1)
    for leaf in range(SPEC.n_leaves):
        p_share = per_port_share([r.port_bytes for r in packet[leaf].records])
        f_share = per_port_share([rs[leaf].port_bytes for rs in fast])
        assert abs(p_share - 0.5) < 0.08
        assert abs(f_share - 0.5) < 0.08


def test_total_ingress_volume_identical():
    """Both simulators must account exactly the demand bytes per leaf
    (the fabric is lossless; retransmissions replace drops 1:1)."""
    packet = run_packet_sim(seed=2, iterations=2)
    fast = run_fast_sim(seed=2, iterations=2)
    expected = TOTAL - TOTAL // SPEC.n_leaves  # ring edge volume
    for leaf in range(SPEC.n_leaves):
        for record in packet[leaf].records:
            assert record.total_bytes == expected
        for rs in fast:
            assert rs[leaf].total_bytes == expected


def test_faulty_port_deficit_agrees():
    """A 20 % drop on down:S0->L1 must depress spine 0's share at leaf 1
    by ~p(1-1/s) = 10 % in both simulators."""
    fault = (down_link(0, 1), 0.2)
    packet = run_packet_sim(seed=3, fault=fault, iterations=6)
    fast = run_fast_sim(seed=3, fault=fault, iterations=6)
    p_share = per_port_share([r.port_bytes for r in packet[1].records])
    f_share = per_port_share([rs[1].port_bytes for rs in fast])
    expected_share = 0.5 * (1 - 0.2) / (0.5 * (1 - 0.2) + 0.5 + 0.5 * 0.2 * 0.5)
    assert abs(p_share - f_share) < 0.05
    assert abs(p_share - expected_share) < 0.06
    assert abs(f_share - expected_share) < 0.04


def test_unaffected_leaves_agree():
    fault = (down_link(0, 1), 0.2)
    packet = run_packet_sim(seed=4, fault=fault, iterations=4)
    fast = run_fast_sim(seed=4, fault=fault, iterations=4)
    for leaf in (0, 2, 3):
        p_share = per_port_share([r.port_bytes for r in packet[leaf].records])
        f_share = per_port_share([rs[leaf].port_bytes for rs in fast])
        assert abs(p_share - 0.5) < 0.08
        assert abs(f_share - 0.5) < 0.08


def test_variance_same_order_of_magnitude():
    """The per-iteration noise (what sets the detector's floor) must be
    comparable between the two simulators."""
    packet = run_packet_sim(seed=5, iterations=8)
    fast = run_fast_sim(seed=5, iterations=8)

    def rel_std(volumes_by_iteration):
        values = [v.get(0, 0) for v in volumes_by_iteration]
        return np.std(values) / np.mean(values)

    p = rel_std([r.port_bytes for r in packet[2].records])
    f = rel_std([rs[2].port_bytes for rs in fast])
    assert p < 0.2 and f < 0.2
    assert (p + 1e-3) / (f + 1e-3) < 6 and (f + 1e-3) / (p + 1e-3) < 6
