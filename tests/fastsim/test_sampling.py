"""Tests for the statistical sampling primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastsim import (
    FastSimError,
    deliver_packets,
    deliver_transfer_bytes,
    expected_arrival_bytes,
    spray_counts,
)


@pytest.fixture
def frng():
    return np.random.Generator(np.random.PCG64(11))


# ----------------------------------------------------------------------
# spray_counts
# ----------------------------------------------------------------------
def test_random_spray_conserves_packets(frng):
    counts = spray_counts(1000, 7, "random", frng)
    assert counts.sum() == 1000
    assert counts.shape == (7,)


def test_adaptive_spray_is_maximally_even(frng):
    counts = spray_counts(1003, 4, "adaptive", frng)
    assert counts.sum() == 1003
    assert counts.max() - counts.min() <= 1


def test_adaptive_spray_exact_division_is_deterministic(frng):
    counts = spray_counts(100, 4, "adaptive", frng)
    assert list(counts) == [25, 25, 25, 25]


def test_zero_packets(frng):
    assert spray_counts(0, 3, "random", frng).sum() == 0


def test_spray_validation(frng):
    with pytest.raises(FastSimError):
        spray_counts(-1, 3, "random", frng)
    with pytest.raises(FastSimError):
        spray_counts(10, 0, "random", frng)
    with pytest.raises(FastSimError):
        spray_counts(10, 3, "warp", frng)


def test_random_spray_variance_matches_multinomial(frng):
    n, p = 10_000, 10
    draws = np.array([spray_counts(n, p, "random", frng)[0] for _ in range(300)])
    # Multinomial marginal: mean n/p, var n(1/p)(1-1/p).
    assert abs(draws.mean() - n / p) < 15
    expected_var = n * (1 / p) * (1 - 1 / p)
    assert 0.6 * expected_var < draws.var() < 1.5 * expected_var


# ----------------------------------------------------------------------
# deliver_packets
# ----------------------------------------------------------------------
def test_all_delivered_without_faults(frng):
    delivered = deliver_packets(500, np.ones(4), "random", frng)
    assert delivered.sum() == 500


def test_retransmission_recovers_all_packets(frng):
    survive = np.array([0.5, 1.0, 1.0, 1.0])
    delivered = deliver_packets(1000, survive, "random", frng)
    # Deliveries (first-arrival only; drops are re-sprayed) sum to n.
    assert delivered.sum() == 1000


def test_faulty_port_sees_deficit(frng):
    survive = np.array([0.8, 1.0, 1.0, 1.0])
    delivered = deliver_packets(100_000, survive, "random", frng)
    share = delivered / delivered.sum()
    assert share[0] < 0.22  # nominal 0.25 minus ~p(1-1/s)
    assert all(share[1:] > 0.25)


def test_dead_port_delivers_nothing(frng):
    survive = np.array([0.0, 1.0])
    delivered = deliver_packets(1000, survive, "random", frng)
    assert delivered[0] == 0
    assert delivered[1] == 1000


def test_all_ports_dead_raises(frng):
    with pytest.raises(FastSimError, match="unrecoverable"):
        deliver_packets(10, np.zeros(3), "random", frng)


def test_deliver_validation(frng):
    with pytest.raises(FastSimError):
        deliver_packets(10, np.array([[1.0]]), "random", frng)
    with pytest.raises(FastSimError):
        deliver_packets(10, np.array([1.5]), "random", frng)


# ----------------------------------------------------------------------
# deliver_transfer_bytes
# ----------------------------------------------------------------------
def test_transfer_bytes_exact_total_no_faults(frng):
    delivered = deliver_transfer_bytes(10_500, 1024, np.ones(4), "random", frng)
    assert delivered.sum() == 10_500


def test_transfer_bytes_exact_total_with_faults(frng):
    survive = np.array([0.7, 1.0, 1.0])
    delivered = deliver_transfer_bytes(99_999, 1000, survive, "adaptive", frng)
    assert delivered.sum() == 99_999


def test_transfer_smaller_than_mtu(frng):
    delivered = deliver_transfer_bytes(10, 1024, np.ones(2), "random", frng)
    assert delivered.sum() == 10


def test_transfer_validation(frng):
    with pytest.raises(FastSimError):
        deliver_transfer_bytes(0, 1024, np.ones(2), "random", frng)
    with pytest.raises(FastSimError):
        deliver_transfer_bytes(100, 0, np.ones(2), "random", frng)


# ----------------------------------------------------------------------
# expected_arrival_bytes
# ----------------------------------------------------------------------
def test_expectation_even_split_when_healthy():
    expected = expected_arrival_bytes(1000, 100, np.ones(4))
    assert np.allclose(expected, 250.0)


def test_expectation_total_conserved_with_faults():
    expected = expected_arrival_bytes(10_000, 100, np.array([0.9, 1.0, 1.0]))
    assert np.isclose(expected.sum(), 10_000, rtol=1e-9)


def test_expectation_matches_deficit_formula():
    # Deficit at the faulty port ~= p(1 - 1/s) for small p.
    s, p, total = 8, 0.02, 1_000_000
    survive = np.ones(s)
    survive[0] = 1 - p
    expected = expected_arrival_bytes(total, 100, survive)
    fair = total / s
    deficit = (fair - expected[0]) / fair
    assert abs(deficit - p * (1 - 1 / s)) < 1e-4


def test_expectation_matches_sampled_mean(frng):
    survive = np.array([0.85, 1.0, 1.0, 1.0])
    total, mtu = 2_000_000, 1000
    expected = expected_arrival_bytes(total, mtu, survive)
    samples = np.array(
        [deliver_transfer_bytes(total, mtu, survive, "random", frng) for _ in range(60)]
    )
    assert np.allclose(samples.mean(axis=0), expected, rtol=0.02)


def test_expectation_all_dead_raises():
    with pytest.raises(FastSimError):
        expected_arrival_bytes(100, 10, np.zeros(2))


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 50_000),
    st.integers(1, 12),
    st.sampled_from(["random", "adaptive"]),
    st.integers(0, 2**31 - 1),
)
def test_property_spray_conserves(n, ports, mode, seed):
    rng = np.random.Generator(np.random.PCG64(seed))
    counts = spray_counts(n, ports, mode, rng)
    assert counts.sum() == n
    assert (counts >= 0).all()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 200_000),
    st.integers(1, 4096),
    st.integers(2, 8),
    st.floats(0.0, 0.5),
    st.integers(0, 2**31 - 1),
)
def test_property_transfer_bytes_conserved(total, mtu, ports, drop, seed):
    rng = np.random.Generator(np.random.PCG64(seed))
    survive = np.ones(ports)
    survive[0] = 1.0 - drop
    delivered = deliver_transfer_bytes(total, mtu, survive, "random", rng)
    assert delivered.sum() == total
    assert (delivered >= 0).all()
