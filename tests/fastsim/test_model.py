"""Tests for the fabric model and per-iteration simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.fastsim import (
    FabricModel,
    FastSimError,
    expected_iteration,
    run_iterations,
    simulate_iteration,
)
from repro.topology import ClosSpec, down_link, up_link


@pytest.fixture
def spec():
    return ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)


@pytest.fixture
def demand(spec):
    return ring_demand(locality_optimized_ring(spec.n_hosts), 400_000)


def test_model_validation(spec):
    with pytest.raises(ValueError):
        FabricModel(spec, silent={"down:S0->L1": 1.5})
    with pytest.raises(ValueError):
        FabricModel(spec, mtu=0)


def test_drop_rate_composition(spec):
    model = FabricModel(
        spec,
        known_disabled=frozenset({up_link(0, 0)}),
        known_gray={down_link(0, 1): 0.1},
        silent={down_link(0, 1): 0.2},
    )
    assert model.drop_rate(up_link(0, 0)) == 1.0
    assert np.isclose(model.drop_rate(down_link(0, 1)), 1 - 0.9 * 0.8)
    assert np.isclose(model.drop_rate(down_link(0, 1), include_silent=False), 0.1)
    assert model.drop_rate(down_link(1, 1)) == 0.0


def test_views(spec):
    model = FabricModel(
        spec, known_gray={"down:S0->L1": 0.1}, silent={"down:S0->L2": 0.2}
    )
    healthy = model.healthy_view()
    assert healthy.silent == {}
    assert healthy.known_gray == model.known_gray
    bare = model.without_gray()
    assert bare.known_gray == {} and bare.silent == {}
    injected = model.with_silent({"up:L0->S1": 0.3})
    assert injected.silent == {"up:L0->S1": 0.3}


def test_simulate_iteration_returns_record_per_leaf(spec, demand, rng):
    model = FabricModel(spec)
    records = simulate_iteration(model, demand, rng)
    assert [r.leaf for r in records] == [0, 1, 2, 3]


def test_simulate_iteration_conserves_pair_bytes(spec, demand, rng):
    model = FabricModel(spec, silent={down_link(0, 1): 0.1})
    records = simulate_iteration(model, demand, rng)
    pair_bytes = demand.leaf_pairs(spec)
    for record in records:
        expected = sum(
            size for (src, dst), size in pair_bytes.items() if dst == record.leaf
        )
        assert record.total_bytes == expected


def test_sender_breakdown_consistent_with_ports(spec, demand, rng):
    model = FabricModel(spec)
    records = simulate_iteration(model, demand, rng)
    for record in records:
        for spine, total in record.port_bytes.items():
            by_sender = sum(
                size for (s, _src), size in record.sender_bytes.items() if s == spine
            )
            assert by_sender == total


def test_disabled_link_carries_nothing(spec, demand, rng):
    model = FabricModel(spec, known_disabled=frozenset({down_link(0, 1)}))
    records = simulate_iteration(model, demand, rng)
    assert 0 not in records[1].port_bytes  # leaf 1 never hears from spine 0
    assert 0 in records[2].port_bytes  # others still do


def test_expected_iteration_even_split(spec, demand):
    model = FabricModel(spec)
    records = expected_iteration(model, demand)
    pair_bytes = demand.leaf_pairs(spec)
    for record in records:
        inbound = sum(
            size for (src, dst), size in pair_bytes.items() if dst == record.leaf
        )
        for spine in range(spec.n_spines):
            assert np.isclose(record.port_bytes[spine], inbound / spec.n_spines)


def test_expected_iteration_includes_known_gray(spec, demand):
    gray = {down_link(0, 1): 0.05}
    model = FabricModel(spec, known_gray=gray)
    records = expected_iteration(model, demand)
    leaf1 = records[1]
    assert leaf1.port_bytes[0] < leaf1.port_bytes[1]


def test_run_iterations_deterministic_per_seed(spec, demand):
    model = FabricModel(spec)
    a = run_iterations(model, demand, 3, seed=5)
    b = run_iterations(model, demand, 3, seed=5)
    assert [
        r.port_bytes for records in a for r in records
    ] == [r.port_bytes for records in b for r in records]


def test_run_iterations_tags_count_up(spec, demand):
    records = run_iterations(FabricModel(spec), demand, 4, seed=0, job_id=9)
    for iteration, per_leaf in enumerate(records):
        for record in per_leaf:
            assert record.tag.iteration == iteration
            assert record.tag.job_id == 9


def test_fault_schedule_applied_per_iteration(spec, demand):
    # Fine MTU keeps multinomial noise well below the fault's signal.
    model = FabricModel(spec, mtu=256)
    target = down_link(0, 1)

    def schedule(iteration):
        return {target: 0.5} if iteration == 1 else {}

    runs = run_iterations(model, demand, 3, seed=3, fault_schedule=schedule)
    volumes = [runs[i][1].port_bytes[0] for i in range(3)]
    assert volumes[1] < volumes[0] * 0.85  # the faulty iteration dips
    assert abs(volumes[2] - volumes[0]) < volumes[0] * 0.15


def test_run_iterations_validation(spec, demand):
    with pytest.raises(FastSimError):
        run_iterations(FabricModel(spec), demand, 0)


def test_temporal_symmetry_holds_without_new_faults(spec, demand):
    """The paper's core invariant: with a *fixed* fault set, per-port
    volume is nearly identical across iterations (§4)."""
    model = FabricModel(
        spec,
        known_disabled=frozenset({up_link(2, 0), down_link(0, 2)}),
        mtu=256,
    )
    runs = run_iterations(model, demand, 6, seed=8)
    for leaf in range(spec.n_leaves):
        for spine in runs[0][leaf].port_bytes:
            series = [runs[i][leaf].port_bytes.get(spine, 0) for i in range(6)]
            mean = np.mean(series)
            assert np.std(series) / mean < 0.05
