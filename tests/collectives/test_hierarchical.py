"""Tests for hierarchical (locality-optimized) AllReduce."""

from __future__ import annotations

import pytest

from repro.collectives import (
    CollectiveError,
    hierarchical_allreduce_stages,
    hierarchical_demand,
    leaf_leaders,
)
from repro.topology import ClosSpec

SPEC = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=4)


def test_leaders_are_first_hosts():
    assert leaf_leaders(SPEC) == [0, 4, 8, 12]


def test_phase_structure():
    stages = hierarchical_allreduce_stages(SPEC, 400_000)
    # local reduce + 2*(N-1) leader ring stages + local broadcast.
    assert len(stages) == 1 + 2 * 3 + 1
    local_reduce = stages[0]
    assert all(t.dst in leaf_leaders(SPEC) for t in local_reduce)
    local_bcast = stages[-1]
    assert all(t.src in leaf_leaders(SPEC) for t in local_bcast)


def test_only_leaders_cross_the_fabric():
    demand = hierarchical_demand(SPEC, 400_000)
    leaders = set(leaf_leaders(SPEC))
    for src, dst, _size in demand.pairs():
        if SPEC.leaf_of_host(src) != SPEC.leaf_of_host(dst):
            assert src in leaders and dst in leaders


def test_single_sender_per_leaf_despite_multi_host_leaves():
    """The property §5.1 relies on: hierarchical scheduling restores the
    one-non-local-flow-per-leaf condition."""
    demand = hierarchical_demand(SPEC, 400_000)
    assert demand.is_single_sender_per_leaf(SPEC)


def test_fabric_volume_matches_leader_ring():
    from repro.collectives import ring_demand

    demand = hierarchical_demand(SPEC, 400_000)
    leader_ring = ring_demand(leaf_leaders(SPEC), 400_000, allreduce=True)
    assert demand.nonlocal_bytes(SPEC) == leader_ring.total_bytes


def test_single_host_leaves_have_no_local_phases():
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    stages = hierarchical_allreduce_stages(spec, 400_000)
    assert len(stages) == 2 * 3  # just the leader ring


def test_reduce_scatter_variant():
    stages = hierarchical_allreduce_stages(SPEC, 400_000, allreduce=False)
    assert len(stages) == 1 + 3 + 1


def test_too_small_rejected():
    with pytest.raises(CollectiveError):
        hierarchical_allreduce_stages(SPEC, 2)


def test_detection_works_on_hierarchical_demand():
    """End to end on fastsim: a fault on a leader-ring path is caught
    with the hierarchical demand driving the prediction."""
    import numpy as np

    from repro.core import AnalyticalPredictor, DetectionConfig, FlowPulseMonitor
    from repro.fastsim import FabricModel, run_iterations
    from repro.topology import down_link
    from repro.units import MIB

    demand = hierarchical_demand(SPEC, 512 * MIB)
    fault = down_link(1, 2)
    model = FabricModel(SPEC, silent={fault: 0.05}, mtu=1024)
    records = run_iterations(model, demand, 3, seed=81)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, demand), DetectionConfig(threshold=0.01)
    )
    verdict = monitor.process_run(records)
    assert verdict.triggered
    assert fault in verdict.suspected_links()
