"""Tests for halving-doubling collectives."""

from __future__ import annotations

import pytest

from repro.collectives import (
    CollectiveError,
    halving_doubling_allgather_stages,
    halving_doubling_allreduce_stages,
    halving_doubling_demand,
    halving_doubling_reduce_scatter_stages,
)
from repro.core import plan_measurement, select_measured_flows
from repro.topology import ClosSpec


def test_stage_count_is_log2():
    stages = halving_doubling_reduce_scatter_stages(list(range(8)), 800)
    assert len(stages) == 3
    stages = halving_doubling_allreduce_stages(list(range(8)), 800)
    assert len(stages) == 6


def test_non_power_of_two_rejected():
    with pytest.raises(CollectiveError):
        halving_doubling_reduce_scatter_stages(list(range(6)), 600)
    with pytest.raises(CollectiveError):
        halving_doubling_reduce_scatter_stages([0], 100)


def test_duplicate_hosts_rejected():
    with pytest.raises(CollectiveError):
        halving_doubling_reduce_scatter_stages([0, 0, 1, 2], 100)


def test_stage_partners_are_xor_pairs():
    hosts = [10, 11, 12, 13]  # ranks 0..3
    stages = halving_doubling_reduce_scatter_stages(hosts, 400)
    # Stage 0: rank i <-> i^1.
    for t in stages[0]:
        i = hosts.index(t.src)
        assert t.dst == hosts[i ^ 1]
    # Stage 1: rank i <-> i^2.
    for t in stages[1]:
        i = hosts.index(t.src)
        assert t.dst == hosts[i ^ 2]


def test_halving_volumes_shrink():
    stages = halving_doubling_reduce_scatter_stages(list(range(8)), 1024)
    sizes = [stage[0].size for stage in stages]
    assert sizes == [512, 256, 128]


def test_doubling_volumes_grow():
    stages = halving_doubling_allgather_stages(list(range(8)), 1024)
    sizes = [stage[0].size for stage in stages]
    assert sizes == [128, 256, 512]


def test_allreduce_total_volume_matches_ring_regime():
    """Halving-doubling moves ~2*total per rank, like Ring-AllReduce."""
    total = 1 << 20
    demand = halving_doubling_demand(list(range(8)), total)
    sent_by_rank0 = sum(size for src, _dst, size in demand.pairs() if src == 0)
    # 2 * (total/2 + total/4 + total/8) = 2 * total * 7/8.
    assert sent_by_rank0 == 2 * (total - total // 8)


def test_too_small_to_halve():
    with pytest.raises(CollectiveError):
        halving_doubling_reduce_scatter_stages(list(range(16)), 8)


def test_violates_single_sender_and_planner_fixes_it():
    """Recursive exchanges give destination leaves multiple senders, so
    the §5.1 measurement planner must select a flow subset."""
    spec = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)
    demand = halving_doubling_demand(list(range(8)), 1 << 20)
    assert not demand.is_single_sender_per_leaf(spec)
    plan = plan_measurement(1, demand, spec)
    assert plan.is_jitter_resilient(spec)
    selected = select_measured_flows(demand, spec)
    assert selected.total_bytes < demand.total_bytes
