"""Tests for demand matrices."""

from __future__ import annotations

import pytest

from repro.collectives import DemandError, DemandMatrix, Transfer
from repro.topology import ClosSpec


def test_add_and_get():
    m = DemandMatrix()
    m.add(0, 1, 100)
    m.add(0, 1, 50)
    assert m.get(0, 1) == 150
    assert m.get(1, 0) == 0
    assert m.total_bytes == 150
    assert len(m) == 1


def test_self_loop_rejected():
    m = DemandMatrix()
    with pytest.raises(DemandError):
        m.add(2, 2, 100)


def test_non_positive_rejected():
    m = DemandMatrix()
    with pytest.raises(DemandError):
        m.add(0, 1, 0)
    with pytest.raises(DemandError):
        m.add(0, 1, -5)


def test_transfer_validation():
    with pytest.raises(DemandError):
        Transfer(src=1, dst=1, size=10)
    with pytest.raises(DemandError):
        Transfer(src=0, dst=1, size=0)


def test_pairs_deterministic_order():
    m = DemandMatrix()
    m.add(3, 0, 1)
    m.add(0, 1, 2)
    m.add(0, 2, 3)
    assert list(m.pairs()) == [(0, 1, 2), (0, 2, 3), (3, 0, 1)]


def test_from_stages_aggregates():
    stages = [
        [Transfer(0, 1, 10), Transfer(1, 2, 20)],
        [Transfer(0, 1, 5)],
    ]
    m = DemandMatrix.from_stages(stages)
    assert m.get(0, 1) == 15
    assert m.get(1, 2) == 20


def test_equality():
    a, b = DemandMatrix(), DemandMatrix()
    a.add(0, 1, 5)
    b.add(0, 1, 5)
    assert a == b
    b.add(1, 2, 1)
    assert a != b


def test_leaf_pairs_drop_local_traffic():
    spec = ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=2)
    m = DemandMatrix()
    m.add(0, 1, 100)  # hosts 0,1 both under leaf 0: local
    m.add(0, 2, 200)  # leaf 0 -> leaf 1
    m.add(1, 3, 300)  # leaf 0 -> leaf 1
    pairs = m.leaf_pairs(spec)
    assert pairs == {(0, 1): 500}
    assert m.nonlocal_bytes(spec) == 500


def test_senders_per_leaf():
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    m = DemandMatrix()
    m.add(0, 2, 10)
    m.add(1, 2, 10)
    m.add(3, 0, 10)
    senders = m.senders_per_leaf(spec)
    assert senders[2] == {0, 1}
    assert senders[0] == {3}


def test_single_sender_condition():
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    ring = DemandMatrix()
    for i in range(4):
        ring.add(i, (i + 1) % 4, 10)
    assert ring.is_single_sender_per_leaf(spec)
    ring.add(0, 2, 5)  # leaf 2 now has two senders
    assert not ring.is_single_sender_per_leaf(spec)
