"""Tests for AllToAll and expert-parallel demand."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import (
    CollectiveError,
    alltoall_demand,
    alltoall_stages,
    expert_parallel_demand,
)


def test_stage_count_and_matchings():
    hosts = list(range(5))
    stages = alltoall_stages(hosts, 100)
    assert len(stages) == 4
    for stage in stages:
        assert sorted(t.src for t in stage) == hosts
        assert sorted(t.dst for t in stage) == hosts
        for t in stage:
            assert t.src != t.dst


def test_every_ordered_pair_covered_once():
    hosts = list(range(6))
    demand = alltoall_demand(hosts, 100)
    for src in hosts:
        for dst in hosts:
            if src != dst:
                assert demand.get(src, dst) == 100


def test_total_bytes():
    demand = alltoall_demand(list(range(4)), 10)
    assert demand.total_bytes == 4 * 3 * 10


def test_validation():
    with pytest.raises(CollectiveError):
        alltoall_stages([0], 10)
    with pytest.raises(CollectiveError):
        alltoall_stages([0, 0], 10)
    with pytest.raises(CollectiveError):
        alltoall_stages([0, 1], 0)


def test_expert_parallel_totals_exact():
    rng = np.random.Generator(np.random.PCG64(0))
    hosts = list(range(6))
    total = 100_000
    demand = expert_parallel_demand(hosts, total, rng)
    for src in hosts:
        sent = sum(demand.get(src, dst) for dst in hosts if dst != src)
        assert sent == total


def test_expert_parallel_every_peer_gets_something():
    rng = np.random.Generator(np.random.PCG64(1))
    demand = expert_parallel_demand(list(range(5)), 10_000, rng, concentration=0.2)
    for src in range(5):
        for dst in range(5):
            if src != dst:
                assert demand.get(src, dst) >= 1


def test_expert_parallel_skew_grows_with_small_concentration():
    rng_a = np.random.Generator(np.random.PCG64(2))
    rng_b = np.random.Generator(np.random.PCG64(2))
    hosts = list(range(8))
    skewed = expert_parallel_demand(hosts, 1_000_000, rng_a, concentration=0.05)
    flat = expert_parallel_demand(hosts, 1_000_000, rng_b, concentration=50.0)

    def spread(demand):
        sizes = [s for _, _, s in demand.pairs()]
        return max(sizes) / min(sizes)

    assert spread(skewed) > spread(flat)


def test_expert_parallel_varies_between_draws():
    rng = np.random.Generator(np.random.PCG64(3))
    hosts = list(range(4))
    a = expert_parallel_demand(hosts, 10_000, rng)
    b = expert_parallel_demand(hosts, 10_000, rng)
    assert a != b  # the dynamic demand the paper's future work targets


def test_expert_parallel_validation():
    rng = np.random.Generator(np.random.PCG64(0))
    with pytest.raises(CollectiveError):
        expert_parallel_demand([0], 100, rng)
    with pytest.raises(CollectiveError):
        expert_parallel_demand([0, 1, 2], 1, rng)
    with pytest.raises(CollectiveError):
        expert_parallel_demand([0, 1], 100, rng, concentration=0.0)
