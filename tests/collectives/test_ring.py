"""Tests for ring collective schedules."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    CollectiveError,
    DemandMatrix,
    chunk_sizes,
    locality_optimized_ring,
    paper_collective_stages,
    ring_allgather_stages,
    ring_allreduce_stages,
    ring_demand,
    ring_reduce_scatter_stages,
    stage_count,
)


def test_chunk_sizes_exact_split():
    assert chunk_sizes(100, 4) == [25, 25, 25, 25]


def test_chunk_sizes_remainder_spread():
    sizes = chunk_sizes(103, 4)
    assert sizes == [26, 26, 26, 25]
    assert sum(sizes) == 103


def test_chunk_sizes_validation():
    with pytest.raises(CollectiveError):
        chunk_sizes(10, 0)
    with pytest.raises(CollectiveError):
        chunk_sizes(3, 4)  # would create empty chunks


def test_reduce_scatter_stage_count():
    stages = ring_reduce_scatter_stages(list(range(8)), 800)
    assert len(stages) == 7
    assert stage_count(8) == 7


def test_paper_collective_is_31_stages_for_32_nodes():
    stages = paper_collective_stages(list(range(32)), 32_000)
    assert len(stages) == 31


def test_allreduce_doubles_stages():
    stages = ring_allreduce_stages(list(range(5)), 500)
    assert len(stages) == 8
    assert stage_count(5, allreduce=True) == 8


def test_every_stage_is_a_full_ring_rotation():
    ring = [3, 1, 4, 0]
    for stage in ring_reduce_scatter_stages(ring, 400):
        srcs = [t.src for t in stage]
        dsts = [t.dst for t in stage]
        assert sorted(srcs) == sorted(ring)
        assert sorted(dsts) == sorted(ring)
        for t in stage:
            k = ring.index(t.src)
            assert t.dst == ring[(k + 1) % len(ring)]


def test_reduce_scatter_total_bytes():
    n, total = 8, 817
    stages = ring_reduce_scatter_stages(list(range(n)), total)
    moved = sum(t.size for stage in stages for t in stage)
    # Each of the N-1 stages moves the whole gradient once (N chunks
    # in flight, one per node).
    sizes = chunk_sizes(total, n)
    expected = sum(
        sizes[(k - t) % n] for t in range(n - 1) for k in range(n)
    )
    assert moved == expected


def test_reduce_scatter_chunk_rotation_is_correct():
    # After N-1 stages, node k must have received every chunk except the
    # one it ends up owning; track chunk indices explicitly.
    n = 5
    ring = list(range(n))
    received: dict[int, set[int]] = {k: set() for k in ring}
    for t in range(n - 1):
        for k in range(n):
            chunk = (k - t) % n
            received[ring[(k + 1) % n]].add(chunk)
    for k in range(n):
        assert len(received[k]) == n - 1


def test_ring_demand_per_edge():
    n, total = 4, 400
    demand = ring_demand(list(range(n)), total)
    # Each edge carries all chunks except one: total - chunk = 300.
    for i in range(n):
        assert demand.get(i, (i + 1) % n) == 300


def test_ring_demand_allreduce_doubles():
    demand = ring_demand(list(range(4)), 400, allreduce=True)
    assert demand.get(0, 1) == 600


def test_allgather_moves_same_volume_as_reduce_scatter():
    ring = list(range(6))
    rs = sum(t.size for s in ring_reduce_scatter_stages(ring, 606) for t in s)
    ag = sum(t.size for s in ring_allgather_stages(ring, 606) for t in s)
    assert rs == ag


def test_ring_validation():
    with pytest.raises(CollectiveError):
        ring_reduce_scatter_stages([0], 100)
    with pytest.raises(CollectiveError):
        ring_reduce_scatter_stages([0, 0, 1], 100)
    with pytest.raises(CollectiveError):
        stage_count(1)


def test_locality_optimized_ring_identity_for_leaf_major_hosts():
    assert locality_optimized_ring(8) == list(range(8))
    assert locality_optimized_ring(8, hosts_per_leaf=2) == list(range(8))


def test_locality_optimized_ring_validation():
    with pytest.raises(CollectiveError):
        locality_optimized_ring(1)
    with pytest.raises(CollectiveError):
        locality_optimized_ring(8, hosts_per_leaf=3)


def test_demand_matches_stage_aggregation():
    ring = list(range(7))
    total = 1234
    stages = ring_reduce_scatter_stages(ring, total)
    assert ring_demand(ring, total) == DemandMatrix.from_stages(stages)


@given(st.integers(2, 20), st.integers(1, 10**7))
def test_property_stage_bytes_conserved(n, total):
    if total < n:
        total = n  # chunking needs at least one byte per chunk
    stages = ring_reduce_scatter_stages(list(range(n)), total)
    sizes = chunk_sizes(total, n)
    assert sum(sizes) == total
    # Every stage moves exactly one full gradient's worth of bytes
    # (each node forwards one chunk, and the N chunks in a stage are a
    # permutation of all chunk indices).
    for t, stage in enumerate(stages):
        stage_chunks = sorted((k - t) % n for k in range(n))
        assert stage_chunks == list(range(n))
        assert sum(tr.size for tr in stage) == total


@given(st.integers(2, 16), st.integers(16, 10**6))
def test_property_ring_demand_single_sender(n, total):
    demand = ring_demand(list(range(n)), total)
    # Exactly one incoming edge per node.
    receivers = {}
    for src, dst, _size in demand.pairs():
        receivers.setdefault(dst, []).append(src)
    assert all(len(v) == 1 for v in receivers.values())
    assert len(receivers) == n
