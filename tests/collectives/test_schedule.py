"""Tests for the staged collective runner on the packet simulator."""

from __future__ import annotations

import pytest

from repro.collectives import (
    JitterModel,
    ScheduleError,
    StagedCollectiveRunner,
    Transfer,
    locality_optimized_ring,
    ring_reduce_scatter_stages,
)
from repro.simnet import Network
from repro.topology import ClosSpec


def small_net(**kwargs):
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    return Network(spec, seed=2, **kwargs)


def ring_stages(net, total=80_000):
    ring = locality_optimized_ring(net.spec.n_hosts)
    return ring_reduce_scatter_stages(ring, total)


def test_runs_requested_iterations():
    net = small_net()
    runner = StagedCollectiveRunner(net, 1, ring_stages(net), iterations=3)
    times = runner.run()
    assert len(times) == 3
    for start, end in times:
        assert end > start


def test_iterations_do_not_overlap():
    net = small_net()
    runner = StagedCollectiveRunner(
        net, 1, ring_stages(net), iterations=3, compute_time_ns=5_000
    )
    times = runner.run()
    for (s0, e0), (s1, e1) in zip(times, times[1:]):
        assert s1 >= e0 + 5_000


def test_collectors_see_every_iteration():
    net = small_net()
    collectors = net.install_collectors(job_id=1)
    runner = StagedCollectiveRunner(net, 1, ring_stages(net), iterations=3)
    runner.run()
    net.finalize_collectors()
    for collector in collectors:
        assert [r.tag.iteration for r in collector.records] == [0, 1, 2]


def test_per_iteration_volume_matches_demand():
    net = small_net()
    collectors = net.install_collectors(job_id=1)
    total = 80_000
    stages = ring_stages(net, total)
    runner = StagedCollectiveRunner(net, 1, stages, iterations=2)
    runner.run()
    net.finalize_collectors()
    # Each leaf receives from its ring predecessor: total - one chunk.
    expected = total - total // 4
    for collector in collectors:
        for record in collector.records:
            assert record.total_bytes == expected


def test_callback_fires_per_iteration():
    net = small_net()
    done = []
    runner = StagedCollectiveRunner(
        net,
        1,
        ring_stages(net),
        iterations=2,
        on_iteration_done=lambda it, now: done.append(it),
    )
    runner.run()
    assert done == [0, 1]


def test_jitter_delays_start_but_not_correctness():
    net = small_net()
    collectors = net.install_collectors(job_id=1)
    jitter = JitterModel(max_jitter_ns=20_000, straggler_prob=0.5, straggler_delay_ns=50_000)
    runner = StagedCollectiveRunner(
        net, 1, ring_stages(net), iterations=2, jitter=jitter, seed=7
    )
    runner.run()
    net.finalize_collectors()
    expected = 80_000 - 80_000 // 4
    for collector in collectors:
        for record in collector.records:
            assert record.total_bytes == expected


def test_jitter_model_validation():
    with pytest.raises(ValueError):
        JitterModel(max_jitter_ns=-1)
    with pytest.raises(ValueError):
        JitterModel(straggler_prob=1.5)


def test_empty_stages_rejected():
    net = small_net()
    with pytest.raises(ScheduleError):
        StagedCollectiveRunner(net, 1, [], iterations=1)


def test_zero_iterations_rejected():
    net = small_net()
    with pytest.raises(ScheduleError):
        StagedCollectiveRunner(net, 1, ring_stages(net), iterations=0)


def test_double_start_rejected():
    net = small_net()
    runner = StagedCollectiveRunner(net, 1, ring_stages(net), iterations=1)
    runner.start()
    with pytest.raises(ScheduleError):
        runner.start()
    net.run()


def test_single_transfer_schedule():
    net = small_net()
    collectors = net.install_collectors(job_id=1)
    stages = [[Transfer(src=0, dst=2, size=10_000)]]
    runner = StagedCollectiveRunner(net, 1, stages, iterations=2)
    runner.run()
    net.finalize_collectors()
    assert collectors[2].records[0].total_bytes == 10_000
    assert collectors[0].records == []


def test_stage_dependencies_pipeline():
    """A node's stage j+1 message is sent only after its stage-j send is
    acked and its stage-j receive arrived: iteration end must exceed the
    sum of per-stage serialization lower bounds."""
    net = small_net()
    stages = ring_stages(net, total=400_000)
    runner = StagedCollectiveRunner(net, 1, stages, iterations=1)
    (start, end), = runner.run()
    # Lower bound: 3 stages of 100_000 bytes over a 400 Gbps host link.
    from repro.units import transmission_time_ns

    per_stage = transmission_time_ns(100_000, net.spec.host_rate_bps)
    assert end - start >= 3 * per_stage
