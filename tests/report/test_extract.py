"""Extractor tests on synthetic evidence streams."""

from __future__ import annotations

import math

import pytest

from repro.fleet.aggregate import Incident
from repro.report import ReportError, analyze, extract_events
from repro.report.tables import rows_matching
from repro.telemetry.events import EventLog


def write_events(path, events):
    log = EventLog()
    for type_, fields in events:
        log.emit(type_, **fields)
    log.dump_jsonl(path)
    return path


def scenario_stream():
    """One chaos-style scenario: fault at iteration 1, detected at 2."""
    return [
        ("scenario.start", dict(seed=5, kind="persistent_drop", job_id=1,
                                n_leaves=4, n_spines=2, threshold=0.05,
                                fault_link="up:L2>S0", fault_iteration=1,
                                detectable=True)),
        ("audit.iteration", dict(iteration=0, learning_event="NONE",
                                 skipped=False, triggered=False,
                                 max_score=0.001, leaves=4)),
        ("audit.iteration", dict(iteration=2, learning_event="NONE",
                                 skipped=False, triggered=True,
                                 max_score=0.3, leaves=4)),
        ("audit.leaf", dict(iteration=2, leaf=0, triggered=True,
                            max_abs_deviation=0.3,
                            ports=[dict(spine=0, predicted=100.0, observed=70.0,
                                        deviation=-0.3, alarm=True),
                                   dict(spine=1, predicted=100.0, observed=99.0,
                                        deviation=-0.01, alarm=False)])),
        ("audit.alarm", dict(iteration=2, leaf=0, spine=0, predicted=100.0,
                             observed=70.0, deviation=-0.3, deficit=True)),
        ("audit.localization", dict(iteration=2, leaf=0,
                                    suspicions=[dict(link="up:L2>S0",
                                                     kind="remote", spine=0,
                                                     affected_senders=[2],
                                                     deviation=-0.3)])),
        ("closedloop.remediation", dict(time_ns=900, job_id=1, iteration=3,
                                        outcome="applied",
                                        links=["up:L2>S0", "down:S0>L2"])),
        ("link.drop", dict(time_ns=100, link="up:L2>S0", size=1024)),
        ("link.drop", dict(time_ns=300, link="up:L2>S0", size=512)),
        ("transport.failed", dict(time_ns=400, host=2, dst_host=3,
                                  msg_id=17, seq=4, retransmissions=6)),
        ("scenario.end", dict(seed=5, job_id=1, ok=True, digest="abc",
                              detection_iteration=2, remediation_iteration=3,
                              iterations_completed=4, failed_messages=1,
                              stalled=False, recovered=True)),
    ]


def test_scenario_stream_fills_every_table(tmp_path):
    path = write_events(tmp_path / "ev.jsonl", scenario_stream())
    facts = extract_events(path)
    run = "ev.jsonl#seed5"
    runs = facts.rows("runs")
    assert len(runs) == 1 and runs[0]["run"] == run
    assert runs[0]["detection_iteration"] == 2
    assert runs[0]["recovered"] is True
    assert len(facts.rows("iterations")) == 2
    # audit.leaf explodes per spine
    observations = facts.rows("leaf_observations")
    assert [o["spine"] for o in observations] == [0, 1]
    assert observations[0]["deviation"] == -0.3
    assert len(facts.rows("alarms")) == 1
    assert facts.rows("localizations")[0]["link"] == "up:L2>S0"
    remediation = facts.rows("remediations")[0]
    assert remediation["outcome"] == "applied"
    # link drops aggregate per (run, link)
    drops = facts.rows("link_drops")
    assert len(drops) == 1
    assert drops[0]["n_drops"] == 2
    assert drops[0]["dropped_bytes"] == 1536
    assert (drops[0]["first_ns"], drops[0]["last_ns"]) == (100, 300)
    assert facts.rows("transport_failures")[0]["msg_id"] == 17


def test_audit_only_stream_synthesizes_incidents(tmp_path):
    path = write_events(tmp_path / "ev.jsonl", scenario_stream())
    facts = extract_events(path)
    incidents = facts.rows("incidents")
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident["link"] == "up:L2>S0"
    assert incident["kind"] == "remote"
    assert incident["first_seen"] == incident["last_seen"] == 2
    assert incident["senders"] == {2: -0.3}


def test_analysis_joins_narrative_evidence(tmp_path):
    path = write_events(tmp_path / "ev.jsonl", scenario_stream())
    analysis = analyze(extract_events(path))
    assert analysis.stats.n_detected == 1
    assert analysis.stats.latencies == [1]  # detected at 2, injected at 1
    run = analysis.runs[0]
    assert run.verdict == "detected"
    narrative = run.narratives[0]
    assert narrative.matches_fault is True
    assert [a["spine"] for a in narrative.opened_evidence] == [0]
    assert len(narrative.remediations) == 1  # matched via link membership
    assert narrative.drops["n_drops"] == 2
    leaf0 = run.timelines[0]
    assert leaf0.leaf == 0
    assert leaf0.alarmed == {2}
    assert analysis.exit_status == 0


def test_multiple_scenarios_split_into_runs(tmp_path):
    events = scenario_stream()
    second = [
        ("scenario.start", dict(seed=6, kind="healthy", job_id=1,
                                n_leaves=4, n_spines=2, threshold=0.05,
                                detectable=False)),
        ("audit.iteration", dict(iteration=0, skipped=False,
                                 triggered=False, max_score=0.0, leaves=4)),
        ("scenario.end", dict(seed=6, job_id=1, ok=True, digest="def",
                              detection_iteration=None)),
    ]
    path = write_events(tmp_path / "batch.jsonl", events + second)
    facts = extract_events(path)
    assert [row["run"] for row in facts.rows("runs")] == [
        "batch.jsonl#seed5",
        "batch.jsonl#seed6",
    ]
    analysis = analyze(facts)
    assert analysis.stats.n_runs == 2
    assert analysis.stats.n_false_alarms == 0
    healthy = analysis.runs[1]
    assert healthy.verdict == "clean"


def test_incident_stream_round_trips_through_fact_tables(tmp_path):
    incident = Incident(
        job_id=4,
        link="down:S0>L6",
        kind="local",
        first_seen=2,
        last_seen=9,
        worst_deviation=-0.25,
        senders={5: -0.25, 7: -0.1},
        leaves={6},
        iterations={2, 3, 9},
        reopened=1,
    )
    log = EventLog()
    log.emit("incident.opened", job_id=4, link="down:S0>L6", kind="local",
             iteration=2, deviation=-0.1)
    log.emit("incident.closed", **incident.to_event())
    path = tmp_path / "incidents.jsonl"
    log.dump_jsonl(path)
    facts = extract_events(path)
    row = facts.rows("incidents")[0]
    assert row["senders"] == {5: -0.25, 7: -0.1}  # int keys restored
    assert row["leaves"] == [6]
    assert row["iterations"] == [2, 3, 9]
    assert row["reopened"] == 1
    assert row["duration"] == 8
    assert facts.issues == []


def test_closed_without_opened_is_flagged(tmp_path):
    incident = Incident(job_id=1, link="a>b", kind="local",
                        first_seen=0, last_seen=0, worst_deviation=-0.1)
    log = EventLog()
    log.emit("incident.opened", job_id=1, link="other>link", kind="local",
             iteration=0, deviation=-0.1)
    log.emit("incident.closed", **incident.to_event())
    path = tmp_path / "incidents.jsonl"
    log.dump_jsonl(path)
    facts = extract_events(path)
    assert any("without a matching incident.opened" in i for i in facts.issues)


def test_truncated_final_line_is_tolerated_and_counted(tmp_path):
    path = write_events(tmp_path / "ev.jsonl", scenario_stream())
    with open(path, "a") as handle:
        handle.write('{"type": "audit.iter')  # killed mid-write
    facts = extract_events(path)
    assert facts.malformed_lines == 1
    assert any("malformed" in issue for issue in facts.issues)
    assert len(facts.rows("runs")) == 1  # intact events all survived
    assert analyze(facts).exit_status == 1  # data loss is disclosed


def test_strict_mode_raises_on_truncated_line(tmp_path):
    path = write_events(tmp_path / "ev.jsonl", scenario_stream())
    with open(path, "a") as handle:
        handle.write("{not json")
    with pytest.raises(ReportError):
        extract_events(path, strict=True)


def test_missing_file_is_report_error(tmp_path):
    with pytest.raises(ReportError):
        extract_events(tmp_path / "nope.jsonl")


def test_non_finite_deviations_round_trip_to_floats(tmp_path):
    """Satellite check: "Infinity"/"NaN" strings from event_to_json
    must come back as floats and not poison latency percentiles."""
    events = scenario_stream()
    events.insert(
        4,
        ("audit.leaf", dict(iteration=2, leaf=1, triggered=False,
                            max_abs_deviation=math.inf,
                            ports=[dict(spine=0, predicted=0.0,
                                        observed=5.0, deviation=math.inf,
                                        alarm=False),
                                   dict(spine=1, predicted=1.0, observed=1.0,
                                        deviation=math.nan, alarm=False)])),
    )
    path = write_events(tmp_path / "ev.jsonl", events)
    facts = extract_events(path)
    rows = rows_matching(facts.rows("leaf_observations"), leaf=1)
    assert rows[0]["deviation"] == math.inf
    assert isinstance(rows[0]["deviation"], float)
    assert math.isnan(rows[1]["deviation"])
    analysis = analyze(facts)
    assert analysis.stats.latencies == [1]
    assert analysis.stats.latency_p50 == 1.0  # finite despite inf/nan rows
    timeline = [t for t in analysis.runs[0].timelines if t.leaf == 1][0]
    assert timeline.max_deviation == 0.0  # non-finite excluded from y-scale


def test_runs_table_carries_greylab_context(tmp_path):
    path = write_events(
        tmp_path / "grey.jsonl",
        [
            ("scenario.start", dict(seed=9, kind="gray_conditional", job_id=1,
                                    n_leaves=4, n_spines=3, threshold=0.2,
                                    fault_link="down:S1>L2", fault_iteration=2,
                                    detectable=False, conditional=True,
                                    spray="random", remediation="reroute",
                                    congested=True, background_jobs=0)),
            ("scenario.end", dict(seed=9, ok=True, violations=[])),
        ],
    )
    facts = extract_events(path)
    (row,) = facts.rows("runs")
    assert row["conditional"] is True
    assert row["spray"] == "random"
    assert row["remediation"] == "reroute"
    assert row["congested"] is True
    assert row["background_jobs"] == 0


def test_runs_table_tolerates_pre_greylab_logs(tmp_path):
    # Logs recorded before the congestion layer existed have no
    # greylab fields; the columns must come back as empty cells, not
    # crashes.
    path = write_events(tmp_path / "old.jsonl", scenario_stream())
    facts = extract_events(path)
    (row,) = facts.rows("runs")
    assert row["conditional"] is None
    assert row["spray"] is None
    assert row["congested"] is None
