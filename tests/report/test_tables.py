"""Fact-table value formatting, CSV determinism, and round-trips."""

from __future__ import annotations

import io
import math

import pytest

from repro.report import (
    SCHEMAS,
    FactTables,
    ReportError,
    format_value,
    parse_value,
    read_csv,
    rows_matching,
)


def test_format_value_canonical_forms():
    assert format_value(None) == ""
    assert format_value(True) == "1"
    assert format_value(False) == "0"
    assert format_value(3) == "3"
    assert format_value(0.1) == "0.1"
    assert format_value([1, 2]) == "1;2"
    assert format_value({"b", "a"}) == "a;b"
    assert format_value({2: -0.5, 1: -0.25}) == "1:-0.25;2:-0.5"


@pytest.mark.parametrize(
    "value",
    [None, 0, 7, -3, 0.5, -0.125, math.inf, -math.inf, 1e-9, True, False],
)
def test_scalar_cells_round_trip(value):
    recovered = parse_value(format_value(value))
    if value is True or value is False:
        assert recovered == int(value)  # booleans ride as 1/0
    else:
        assert recovered == value


def test_nan_cell_round_trips_as_nan():
    recovered = parse_value(format_value(math.nan))
    assert isinstance(recovered, float) and math.isnan(recovered)


def test_add_fills_missing_columns_and_rejects_unknown():
    facts = FactTables()
    row = facts.add("alarms", run="r", iteration=3)
    assert set(row) == set(SCHEMAS["alarms"])
    assert row["leaf"] is None
    with pytest.raises(ReportError):
        facts.add("alarms", run="r", not_a_column=1)


def test_write_csv_is_byte_deterministic():
    def build() -> str:
        facts = FactTables()
        facts.add("remediations", run="r", iteration=2, outcome="applied",
                  links=("up:L1>S0", "down:S0>L1"))
        facts.add("remediations", run="r", iteration=5, outcome="vetoed",
                  links=("up:L2>S1",))
        buffer = io.StringIO()
        facts.write_csv("remediations", buffer)
        return buffer.getvalue()

    first, second = build(), build()
    assert first == second
    assert first.splitlines()[0] == ",".join(SCHEMAS["remediations"])
    assert "\r" not in first  # lineterminator pinned to \n


def test_write_all_and_read_csv_round_trip(tmp_path):
    facts = FactTables()
    facts.add(
        "incidents",
        run="r",
        job_id=4,
        link="down:S0>L6",
        kind="local",
        first_seen=2,
        last_seen=9,
        duration=8,
        n_iterations=6,
        reopened=1,
        worst_deviation=-0.25,
        leaves=[6],
        senders={5: -0.25},
        iterations=[2, 3, 9],
    )
    paths = facts.write_all(tmp_path)
    assert set(paths) == set(SCHEMAS)
    rows = read_csv(paths["incidents"])
    assert rows[0]["worst_deviation"] == -0.25
    assert rows[0]["job_id"] == 4
    assert rows[0]["link"] == "down:S0>L6"
    assert rows[0]["iterations"] == "2;3;9"  # list cells stay joined


def test_read_csv_rejects_empty_file(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(ReportError):
        read_csv(empty)


def test_rows_matching_filters_on_all_criteria():
    rows = [
        {"run": "a", "leaf": 1},
        {"run": "a", "leaf": 2},
        {"run": "b", "leaf": 1},
    ]
    assert rows_matching(rows, run="a", leaf=2) == [{"run": "a", "leaf": 2}]
    assert rows_matching(rows, run="c") == []


def test_merge_concatenates_tables_and_caveats():
    left, right = FactTables(), FactTables()
    left.add("runs", run="x")
    right.add("runs", run="y")
    right.malformed_lines = 2
    right.issues.append("boom")
    left.merge(right)
    assert [row["run"] for row in left.rows("runs")] == ["x", "y"]
    assert left.malformed_lines == 2
    assert left.issues == ["boom"]
