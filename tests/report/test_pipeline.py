"""End-to-end pipeline tests: evidence -> bundle on disk."""

from __future__ import annotations

import re

import pytest

from repro.analysis import ExperimentConfig
from repro.fleet import LoadGenConfig, write_workload
from repro.report import ReportError, build_report, classify_input

from .test_extract import scenario_stream, write_events


@pytest.fixture(scope="module")
def workload_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("fprec") / "workload.fprec"
    config = LoadGenConfig(
        n_jobs=2,
        n_iterations=5,
        fault_fraction=0.5,
        base_seed=3,
        experiment=ExperimentConfig(
            n_leaves=6,
            n_spines=3,
            collective_bytes=1 << 30,
            warmup_iterations=2,
        ),
    )
    write_workload(config, path)
    return path


def test_classify_input():
    assert classify_input("a.jsonl") == "events"
    assert classify_input("b.LOG") == "events"
    assert classify_input("c.fprec") == "fprec"
    with pytest.raises(ReportError):
        classify_input("d.txt")


def test_build_report_from_events_writes_bundle(tmp_path):
    events = write_events(tmp_path / "ev.jsonl", scenario_stream())
    out = tmp_path / "out"
    bundle = build_report([events], out)
    assert bundle.exit_status == 0
    assert (out / "runs.csv").exists()
    assert (out / "incidents.csv").exists()
    html = (out / "report.html").read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert bundle.analysis.stats.n_detected == 1


def test_report_html_is_self_contained(tmp_path):
    events = write_events(tmp_path / "ev.jsonl", scenario_stream())
    bundle = build_report([events], tmp_path / "out")
    html = bundle.html_path.read_text()
    assert not re.search(r"https?://", html)
    assert "<script" not in html
    assert "<svg" in html  # sparklines are inline
    assert "@media (prefers-color-scheme: dark)" in html
    # link names contain ">" and must arrive escaped, not raw
    assert "up:L2&gt;S0" in html
    assert "up:L2>S0" not in html.replace("up:L2&gt;S0", "")


def test_build_report_is_byte_deterministic(tmp_path, workload_path):
    events = write_events(tmp_path / "ev.jsonl", scenario_stream())
    first = build_report([events, workload_path], tmp_path / "a")
    second = build_report([events, workload_path], tmp_path / "b")
    for table, path in first.csv_paths.items():
        assert path.read_bytes() == second.csv_paths[table].read_bytes(), table
    assert first.html_path.read_bytes() == second.html_path.read_bytes()


def test_fprec_capture_alone_yields_full_fact_set(tmp_path, workload_path):
    bundle = build_report([workload_path], tmp_path / "out")
    facts = bundle.facts
    runs = facts.rows("runs")
    assert len(runs) == 2  # one run per job
    assert {row["kind"] for row in runs} == {"fleet"}
    faulted = [row for row in runs if row["detectable"]]
    assert len(faulted) == 1
    assert faulted[0]["detection_iteration"] is not None
    assert facts.rows("incidents"), "faulted job must yield an incident"
    assert facts.rows("leaf_observations")
    # ground truth from the capture judges the detection
    assert bundle.analysis.stats.n_detected == 1
    assert bundle.analysis.stats.n_false_alarms == 0
    assert bundle.exit_status == 0


def test_incident_facts_agree_between_stream_and_replay(tmp_path, workload_path):
    """The same capture's incidents must be identical whether they come
    from a live --incidents-out stream or offline re-derivation."""
    from repro.fleet import read_fprec
    from repro.fleet.aggregate import FleetAggregator
    from repro.fleet.service import reference_verdicts
    from repro.telemetry.events import EventLog

    content = read_fprec(workload_path)
    log = EventLog()
    aggregator = FleetAggregator(event_log=log)
    for job_id, verdicts in reference_verdicts(
        content.jobs, content.batches
    ).items():
        for verdict in verdicts:
            aggregator.observe(job_id, verdict)
    aggregator.finalize()
    stream = tmp_path / "incidents.jsonl"
    log.dump_jsonl(stream)

    streamed = build_report([stream], tmp_path / "a").facts.rows("incidents")
    rederived = build_report([workload_path], tmp_path / "b").facts.rows("incidents")
    strip = lambda row: {k: v for k, v in row.items() if k != "run"}
    assert [strip(r) for r in streamed] == [strip(r) for r in rederived]


def test_no_evidence_is_an_error(tmp_path):
    with pytest.raises(ReportError):
        build_report([], tmp_path / "out")


def test_unreadable_fprec_is_report_error(tmp_path):
    bad = tmp_path / "bad.fprec"
    bad.write_text("this is not a capture\n")
    with pytest.raises(ReportError):
        build_report([bad], tmp_path / "out")


def test_no_html_flag_skips_rendering(tmp_path):
    events = write_events(tmp_path / "ev.jsonl", scenario_stream())
    bundle = build_report([events], tmp_path / "out", write_html=False)
    assert bundle.html_path is None
    assert not (tmp_path / "out" / "report.html").exists()
