"""Chaos harness tests: seeded scenarios, invariants, determinism."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.scenarios import (
    ChaosConfig,
    check_invariants,
    generate_scenario,
    run_chaos_batch,
    run_scenario,
)
from repro.scenarios.chaos import KINDS

CHAOS = ChaosConfig()


def test_generation_is_deterministic_and_varied():
    first = [generate_scenario(seed, CHAOS) for seed in range(25)]
    second = [generate_scenario(seed, CHAOS) for seed in range(25)]
    for a, b in zip(first, second):
        assert a == b
    assert {s.kind for s in first} == set(KINDS)
    for scenario in first:
        assert 4 <= scenario.config.n_leaves <= 6
        assert 3 <= scenario.config.n_spines <= 4
        if scenario.kind != "healthy":
            assert scenario.fault_link is not None
            assert 1 <= scenario.fault_iteration <= 3


def test_chaos_batch_of_20_seeded_scenarios_holds_every_invariant():
    report = run_chaos_batch(ChaosConfig(n_scenarios=20, base_seed=0))
    assert len(report.outcomes) == 20
    assert report.ok, report.summary()


def test_same_seed_reproduces_same_outcome_digest():
    for seed in (1, 7):  # a persistent drop and a silent disconnect
        scenario = generate_scenario(seed, CHAOS)
        first = run_scenario(scenario, CHAOS)
        again = run_scenario(scenario, CHAOS)
        assert first.ok, first.violations
        assert first.digest == again.digest


def test_invariant_checker_flags_missed_detection():
    # A healthy run rebadged as "should have been detected": the
    # checker must report the missing detection and remediation, not
    # silently pass.
    healthy = generate_scenario(2, CHAOS)
    assert healthy.kind == "healthy"
    rigged = replace(
        healthy,
        kind="persistent_drop",
        detectable=True,
        fault_iteration=1,
        fault_link="up:L0->S0",
    )
    outcome = run_scenario(rigged, CHAOS)
    assert any(v.startswith("detection:") for v in outcome.violations)
    assert any(v.startswith("recovery:") for v in outcome.violations)


def test_invariant_checker_flags_conservation_breach():
    from repro.scenarios import SimnetClosedLoopDriver

    scenario = generate_scenario(2, CHAOS)  # healthy, cheap
    driver = SimnetClosedLoopDriver(scenario.config)
    result = driver.run()
    assert check_invariants(scenario, result, driver, CHAOS) == []
    # Lose a packet from the books: conservation must trip.
    link = next(iter(driver.network.links.values()))
    link.tx_packets += 1
    violations = check_invariants(scenario, result, driver, CHAOS)
    assert any(v.startswith("conservation:") for v in violations)


def test_report_summary_names_failing_scenarios():
    scenario = generate_scenario(0, CHAOS)
    outcome = run_scenario(scenario, CHAOS)
    outcome.violations.append("detection: synthetic failure")
    from repro.scenarios import ChaosReport

    report = ChaosReport(config=CHAOS, outcomes=[outcome])
    summary = report.summary()
    assert "0/1 scenarios passed" in summary
    assert "synthetic failure" in summary


# ----------------------------------------------------------------------
# Kind selection and legacy compatibility
# ----------------------------------------------------------------------
#: Digests recorded under the original ``seed % len(KINDS)`` kind
#: selection; ``legacy_kind_selection=True`` must keep reproducing them
#: so pre-existing seeded corpora stay addressable.
LEGACY_DIGESTS = {
    0: "fab6728e3049e2307846826ef12210b2e14225a0b7e163691c035db2490f32fb",
    3: "683d4b5cca223778ae41e89661e0b639f05ef78ca3b0ae56eff024863481be44",
    11: "bd4db3161ffc8cd68953f841aee27f532c23e322fe5db36c5f1ce6bd1c2bfa49",
}


def test_legacy_kind_selection_reproduces_recorded_digests():
    legacy = ChaosConfig(legacy_kind_selection=True)
    for seed, expected in LEGACY_DIGESTS.items():
        scenario = generate_scenario(seed, legacy)
        assert scenario.kind == KINDS[seed % len(KINDS)]
        outcome = run_scenario(scenario, legacy)
        assert outcome.ok, outcome.violations
        assert outcome.digest == expected


def test_default_kind_selection_is_rng_driven_not_modular():
    kinds = [generate_scenario(seed, CHAOS).kind for seed in range(25)]
    assert kinds != [KINDS[seed % len(KINDS)] for seed in range(25)]
    assert set(kinds) == set(KINDS)


def test_kinds_filter_restricts_generation():
    config = ChaosConfig(kinds=("healthy", "transient"))
    kinds = {generate_scenario(seed, config).kind for seed in range(16)}
    assert kinds <= {"healthy", "transient"}
    assert len(kinds) == 2


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        ChaosConfig(kinds=("healthy", "blue_smoke"))


# ----------------------------------------------------------------------
# Greylab scenario kinds
# ----------------------------------------------------------------------
def test_congested_healthy_scenarios_force_the_congestion_layer():
    config = ChaosConfig(kinds=("congested_healthy",), fabric=(4, 3))
    for seed in range(6):
        scenario = generate_scenario(seed, config)
        assert scenario.kind == "congested_healthy"
        assert scenario.config.ecn_threshold_bytes in (4096, 8192, 16384)
        assert scenario.config.congestion is not None
        assert scenario.fault_link is None
        assert not scenario.detectable


def test_gray_conditional_scenarios_are_conditional_with_onset():
    config = ChaosConfig(kinds=("gray_conditional",), fabric=(4, 3))
    for seed in range(6):
        scenario = generate_scenario(seed, config)
        assert scenario.conditional
        assert scenario.fault_link is not None
        assert scenario.fault_iteration is not None
        assert scenario.iteration_faults
        # Onset leaves room for detection inside the run.
        assert scenario.fault_iteration < scenario.config.n_iterations - 1


def test_cotenant_scenarios_carry_background_jobs():
    config = ChaosConfig(kinds=("cotenant",), fabric=(4, 3))
    for seed in range(4):
        scenario = generate_scenario(seed, config)
        background = scenario.config.background_jobs
        assert background in (1, 2)
        assert scenario.config.hosts_per_leaf == 1 + background


def test_congested_healthy_batch_never_alarms():
    # The headline acceptance: congestion alone, with the right
    # per-policy calibration, must not produce asymmetry alarms.
    # The predictor is derived from the policy (ecmp -> learned).
    for spray, threshold in (
        ("round_robin", 0.05),
        ("random", 0.2),
        ("ecmp", 0.05),
    ):
        config = ChaosConfig(
            kinds=("congested_healthy",),
            fabric=(4, 3),
            spray=spray,
            threshold=threshold,
            collective_bytes=600_000,
            n_iterations=6,
            mtu=512,
        )
        for seed in range(2):
            outcome = run_scenario(generate_scenario(seed, config), config)
            assert outcome.ok, (spray, seed, outcome.violations)
            assert outcome.result.detection_iteration is None, (spray, seed)
