"""Chaos harness tests: seeded scenarios, invariants, determinism."""

from __future__ import annotations

from dataclasses import replace

from repro.scenarios import (
    ChaosConfig,
    check_invariants,
    generate_scenario,
    run_chaos_batch,
    run_scenario,
)
from repro.scenarios.chaos import KINDS

CHAOS = ChaosConfig()


def test_generation_is_deterministic_and_varied():
    first = [generate_scenario(seed, CHAOS) for seed in range(25)]
    second = [generate_scenario(seed, CHAOS) for seed in range(25)]
    for a, b in zip(first, second):
        assert a == b
    assert {s.kind for s in first} == set(KINDS)
    for scenario in first:
        assert 4 <= scenario.config.n_leaves <= 6
        assert 3 <= scenario.config.n_spines <= 4
        if scenario.kind != "healthy":
            assert scenario.fault_link is not None
            assert 1 <= scenario.fault_iteration <= 3


def test_chaos_batch_of_20_seeded_scenarios_holds_every_invariant():
    report = run_chaos_batch(ChaosConfig(n_scenarios=20, base_seed=0))
    assert len(report.outcomes) == 20
    assert report.ok, report.summary()


def test_same_seed_reproduces_same_outcome_digest():
    for seed in (1, 2):  # a persistent drop and a silent disconnect
        scenario = generate_scenario(seed, CHAOS)
        first = run_scenario(scenario, CHAOS)
        again = run_scenario(scenario, CHAOS)
        assert first.ok, first.violations
        assert first.digest == again.digest


def test_invariant_checker_flags_missed_detection():
    # A healthy run rebadged as "should have been detected": the
    # checker must report the missing detection and remediation, not
    # silently pass.
    healthy = generate_scenario(0, CHAOS)
    assert healthy.kind == "healthy"
    rigged = replace(
        healthy,
        kind="persistent_drop",
        detectable=True,
        fault_iteration=1,
        fault_link="up:L0->S0",
    )
    outcome = run_scenario(rigged, CHAOS)
    assert any(v.startswith("detection:") for v in outcome.violations)
    assert any(v.startswith("recovery:") for v in outcome.violations)


def test_invariant_checker_flags_conservation_breach():
    from repro.scenarios import SimnetClosedLoopDriver

    scenario = generate_scenario(0, CHAOS)  # healthy, cheap
    driver = SimnetClosedLoopDriver(scenario.config)
    result = driver.run()
    assert check_invariants(scenario, result, driver, CHAOS) == []
    # Lose a packet from the books: conservation must trip.
    link = next(iter(driver.network.links.values()))
    link.tx_packets += 1
    violations = check_invariants(scenario, result, driver, CHAOS)
    assert any(v.startswith("conservation:") for v in violations)


def test_report_summary_names_failing_scenarios():
    scenario = generate_scenario(0, CHAOS)
    outcome = run_scenario(scenario, CHAOS)
    outcome.violations.append("detection: synthetic failure")
    from repro.scenarios import ChaosReport

    report = ChaosReport(config=CHAOS, outcomes=[outcome])
    summary = report.summary()
    assert "0/1 scenarios passed" in summary
    assert "synthetic failure" in summary
