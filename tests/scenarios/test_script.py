"""Tests for time-scripted fault lifecycles."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    FaultEvent,
    FaultScript,
    ScenarioError,
    apply_fault_event,
)
from repro.simnet import (
    DisconnectFault,
    DropFault,
    FaultInjectorError,
    Network,
)
from repro.topology import ClosSpec, up_link


def small_net(**kwargs) -> Network:
    return Network(ClosSpec(n_leaves=2, n_spines=2), seed=0, **kwargs)


# ----------------------------------------------------------------------
# Event validation
# ----------------------------------------------------------------------
def test_event_rejects_negative_time():
    with pytest.raises(ScenarioError):
        FaultEvent(-1, "inject", "up:L0->S0", DropFault(0.1))


def test_event_rejects_unknown_action():
    with pytest.raises(ScenarioError):
        FaultEvent(0, "explode", "up:L0->S0", DropFault(0.1))


def test_inject_event_requires_fault():
    with pytest.raises(ScenarioError):
        FaultEvent(0, "inject", "up:L0->S0")


def test_heal_event_rejects_fault():
    with pytest.raises(ScenarioError):
        FaultEvent(0, "heal", "up:L0->S0", DropFault(0.1))


# ----------------------------------------------------------------------
# Builder / introspection
# ----------------------------------------------------------------------
def test_builder_chains_and_orders():
    link = up_link(0, 1)
    script = (
        FaultScript()
        .inject(1_000, link, DropFault(0.02))
        .degrade(2_000, link, 0.5)
        .disconnect(3_000, link)
        .heal(4_000, link)
    )
    assert [e.action for e in script.events] == [
        "inject",
        "degrade",
        "disconnect",
        "heal",
    ]
    assert script.span_ns == 4_000
    assert script.links() == {link}
    # The default disconnect is the silent (gray) failure.
    assert script.events[2].fault.known is False


def test_shifted_moves_every_event():
    script = FaultScript().inject(100, "up:L0->S0", DropFault(0.1)).heal(200, "up:L0->S0")
    moved = script.shifted(1_000)
    assert [e.at_ns for e in moved.events] == [1_100, 1_200]
    # Original untouched.
    assert [e.at_ns for e in script.events] == [100, 200]


def test_validate_rejects_unknown_link():
    script = FaultScript().inject(0, "up:L9->S9", DropFault(0.1))
    with pytest.raises(ScenarioError, match="unknown links"):
        script.validate(small_net())


# ----------------------------------------------------------------------
# Engine-scheduled application
# ----------------------------------------------------------------------
def test_schedule_applies_lifecycle_at_scripted_times():
    net = small_net()
    link = up_link(0, 1)
    script = (
        FaultScript()
        .inject(1_000, link, DropFault(0.1))
        .degrade(2_000, link, 0.5)
        .heal(3_000, link)
    )
    snapshots = {}

    def probe(label):
        fault = net.injector.fault_on(link)
        snapshots[label] = (type(fault).__name__, getattr(fault, "rate", None))

    scheduled = script.schedule(net)
    net.sim.schedule_at(1_500, probe, "after_inject")
    net.sim.schedule_at(2_500, probe, "after_degrade")
    net.sim.schedule_at(3_500, probe, "after_heal")
    net.run()

    assert snapshots["after_inject"] == ("DropFault", 0.1)
    assert snapshots["after_degrade"] == ("DropFault", 0.5)
    assert snapshots["after_heal"] == ("NoneType", None)
    assert [t for t, _ in scheduled.applied] == [1_000, 2_000, 3_000]
    assert scheduled.pending == 0


def test_cancel_stops_unfired_events():
    net = small_net()
    link = up_link(0, 1)
    scheduled = FaultScript().inject(1_000, link, DropFault(0.1)).schedule(net)
    scheduled.cancel()
    net.sim.schedule_at(2_000, lambda: None)
    net.run()
    assert scheduled.applied == []
    assert net.injector.fault_on(link) is None


def test_scripted_known_disconnect_updates_control_plane():
    net = small_net()
    link = up_link(0, 1)
    FaultScript().disconnect(500, link, known=True).schedule(net)
    net.run()
    assert link in net.control.known_disabled


# ----------------------------------------------------------------------
# Immediate application
# ----------------------------------------------------------------------
def test_apply_heal_on_healthy_link_is_an_error():
    net = small_net()
    with pytest.raises(FaultInjectorError):
        apply_fault_event(net, FaultEvent(0, "heal", up_link(0, 1)))


def test_apply_double_inject_is_an_authoring_error():
    net = small_net()
    link = up_link(0, 1)
    apply_fault_event(net, FaultEvent(0, "inject", link, DropFault(0.1)))
    with pytest.raises(ValueError):
        apply_fault_event(net, FaultEvent(0, "inject", link, DropFault(0.2)))


def test_apply_degrade_replaces_existing_fault():
    net = small_net()
    link = up_link(0, 1)
    apply_fault_event(net, FaultEvent(0, "inject", link, DropFault(0.1)))
    apply_fault_event(net, FaultEvent(0, "degrade", link, DropFault(0.8)))
    assert net.injector.fault_on(link).rate == 0.8


class _Recorder:
    """Minimal duck-typed telemetry session."""

    def __init__(self):
        self.events = []
        self.counts = []

    def emit(self, event_type, **fields):
        self.events.append((event_type, fields))

    def counter(self, name, **labels):
        recorder = self

        class _Counter:
            def inc(self, n=1):
                recorder.counts.append((name, labels, n))

        return _Counter()


def test_apply_emits_scenario_telemetry():
    recorder = _Recorder()
    net = small_net(telemetry=recorder)
    link = up_link(0, 1)
    apply_fault_event(net, FaultEvent(0, "inject", link, DropFault(0.25)))
    kinds = [t for t, _ in recorder.events]
    assert "scenario.fault_event" in kinds
    fields = dict(recorder.events[kinds.index("scenario.fault_event")][1])
    assert fields["link"] == link
    assert fields["rate"] == 0.25
    assert ("scenario.fault_events", {"action": "inject"}, 1) in recorder.counts
