"""Tests for scenario scripting, the simnet closed loop, and chaos."""
