"""End-to-end tests for the packet-level closed loop.

The flagship test is the paper's full operator story on real packets:
a silent drop fault appears mid-run, FlowPulse detects it from tagged
switch counters, localizes it to the faulted cable, the control plane
disables that cable between iterations, and the remaining iterations
run quiet under the detection threshold.
"""

from __future__ import annotations

import pytest

from repro.core.remediation import RemediationAction
from repro.scenarios import (
    FaultEvent,
    FaultScript,
    SimnetClosedLoopConfig,
    SimnetClosedLoopDriver,
    run_simnet_closed_loop,
)
from repro.scenarios.chaos import outcome_digest
from repro.simnet import CongestionConfig, DropFault

#: Small enough to run in seconds, large enough that round-robin packet
#: quantization noise (~mtu * spines * hosts / bytes = 0.8%) stays under
#: the 1% detection threshold.
CONFIG = SimnetClosedLoopConfig(
    n_leaves=5,
    n_spines=3,
    collective_bytes=1_000_000,
    mtu=512,
    n_iterations=8,
    threshold=0.01,
)

FAULT_LINK = "up:L2->S1"
FAULT_ITERATION = 2


def test_detect_localize_disable_recover_end_to_end():
    result = run_simnet_closed_loop(
        CONFIG,
        iteration_faults={
            FAULT_ITERATION: [
                FaultEvent(0, "inject", FAULT_LINK, DropFault(0.5))
            ]
        },
    )
    # The run itself survives the fault: no stall, no failed messages,
    # every iteration completes.
    assert not result.stalled
    assert result.failed_messages == 0
    assert result.iterations_completed == CONFIG.n_iterations

    # Detection fires the iteration the fault appears; localization
    # points at the faulted link.
    assert result.detection_iteration == FAULT_ITERATION
    detection_step = result.steps[FAULT_ITERATION]
    assert FAULT_LINK in detection_step.suspected_links
    assert detection_step.max_score > 0.1

    # Confirmation takes one more faulty iteration, then the cable is
    # disabled in the live control plane.
    assert result.remediation_iteration == FAULT_ITERATION + 1
    assert len(result.actions) == 1
    assert FAULT_LINK in result.actions[0].disabled_links
    assert FAULT_LINK in result.steps[-1].disabled_so_far

    # Temporal symmetry restored: the tail runs quiet, under 1%.
    assert result.recovered
    assert result.post_remediation_max_score < 0.01
    # The fault was injected exactly once, at the scripted boundary.
    assert [e.action for _, e in result.applied_fault_events] == ["inject"]


def test_healthy_run_never_alarms():
    config = SimnetClosedLoopConfig(
        n_leaves=5,
        n_spines=3,
        collective_bytes=1_000_000,
        mtu=512,
        n_iterations=4,
        threshold=0.01,
    )
    result = run_simnet_closed_loop(config)
    assert result.iterations_completed == 4
    assert result.detection_iteration is None
    assert result.actions == []
    assert result.failed_messages == 0
    assert all(s.max_score < 0.01 for s in result.steps)


def test_wall_clock_fault_script_fires_mid_run():
    config = SimnetClosedLoopConfig(
        n_leaves=5,
        n_spines=3,
        collective_bytes=1_000_000,
        mtu=512,
        n_iterations=6,
        threshold=0.01,
    )
    # 100 us is early inside iteration 0 for this config.
    script = FaultScript().inject(100_000, FAULT_LINK, DropFault(0.5))
    result = run_simnet_closed_loop(config, script=script)
    assert len(result.applied_fault_events) == 1
    fired_at, event = result.applied_fault_events[0]
    assert fired_at == 100_000
    assert event.link == FAULT_LINK
    # The fault lands partway through an iteration window; the partial
    # deficit may dilute below threshold, so the alarm is only
    # guaranteed once a full window runs under the fault.
    assert result.detection_iteration is not None
    assert result.detection_iteration <= 2
    assert result.actions
    assert result.recovered


def test_partitioning_remediation_is_vetoed():
    driver = SimnetClosedLoopDriver(CONFIG)
    spec = CONFIG.spec()
    # An action that would take leaf 0 off every spine: the driver must
    # refuse it and leave the control plane untouched.
    all_uplinks = frozenset(
        link
        for spine in range(spec.n_spines)
        for link in (f"up:L0->S{spine}", f"down:S{spine}->L0")
    )
    lethal = RemediationAction(
        iteration=0,
        cables=frozenset((0, s) for s in range(spec.n_spines)),
        disabled_links=all_uplinks,
    )
    assert driver._apply_action(lethal) is False
    assert driver.network.control.known_disabled == frozenset()

    # A single-cable action is benign and goes through.
    benign = RemediationAction(
        iteration=0,
        cables=frozenset({(0, 0)}),
        disabled_links=frozenset({"up:L0->S0", "down:S0->L0"}),
    )
    assert driver._apply_action(benign) is True
    assert "up:L0->S0" in driver.network.control.known_disabled


# ----------------------------------------------------------------------
# Golden parity: the congestion layer is off by default
# ----------------------------------------------------------------------
#: Outcome digests recorded before the ECN/congestion layer existed.
#: A default-config run (no ``ecn_threshold_bytes``, no ``congestion``)
#: must stay bit-identical under every spray policy.
GOLDEN_CONFIG = dict(
    n_leaves=4, n_spines=3, n_iterations=4, collective_bytes=300_000, seed=7
)
GOLDEN_DIGESTS = {
    "round_robin": "29a92de66bfea2307f86748a3d2575c83863dbbcd3d790c53ca1bf1b1b11c292",
    "random": "4d787f023e503341cd3a90ccb84a8a58d0001dcbf31ad3d9b5fca027cb8e4383",
    "adaptive": "c642624747ae68fd4e8ef4f313407f023a470c7df7111981609b074a1399ccb7",
    "ecmp": "3226d76e1ef162ca307d2d5da8b5f0178083d1ad75537c02930e2ed6675aac5e",
}


@pytest.mark.parametrize("spray", sorted(GOLDEN_DIGESTS))
def test_ecn_off_runs_stay_bit_identical(spray):
    config = SimnetClosedLoopConfig(spray=spray, **GOLDEN_CONFIG)
    result = run_simnet_closed_loop(config)
    assert outcome_digest(result) == GOLDEN_DIGESTS[spray]


def test_ecn_enabled_marks_and_still_completes():
    config = SimnetClosedLoopConfig(
        ecn_threshold_bytes=4096,
        congestion=CongestionConfig(),
        **GOLDEN_CONFIG,
    )
    driver = SimnetClosedLoopDriver(config)
    result = driver.run()
    assert result.iterations_completed == config.n_iterations
    assert not result.stalled
    assert driver.network.total_ecn_marks() > 0


# ----------------------------------------------------------------------
# Reroute remediation and co-tenancy
# ----------------------------------------------------------------------
def test_reroute_remediation_excludes_without_disabling():
    config = SimnetClosedLoopConfig(
        n_leaves=5,
        n_spines=3,
        collective_bytes=1_000_000,
        mtu=512,
        n_iterations=8,
        threshold=0.01,
        remediation="reroute",
    )
    driver = SimnetClosedLoopDriver(
        config,
        iteration_faults={
            FAULT_ITERATION: [
                FaultEvent(0, "inject", FAULT_LINK, DropFault(0.5))
            ]
        },
    )
    result = driver.run()
    assert result.actions
    # The suspect cable left the spray candidate set but stays up.
    assert FAULT_LINK in driver.network.control.spray_excluded
    assert driver.network.control.known_disabled == frozenset()
    assert result.recovered


def test_background_cotenants_share_the_fabric_quietly():
    config = SimnetClosedLoopConfig(
        n_leaves=4,
        n_spines=3,
        hosts_per_leaf=2,
        background_jobs=1,
        collective_bytes=300_000,
        mtu=512,
        n_iterations=3,
        threshold=0.05,
        seed=3,
    )
    result = run_simnet_closed_loop(config)
    assert result.iterations_completed == 3
    assert not result.stalled
    # Co-tenant load alone is symmetric noise, not an asymmetry alarm.
    assert result.detection_iteration is None


def test_config_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        SimnetClosedLoopConfig(remediation="pray")
    with pytest.raises(ValueError):
        SimnetClosedLoopConfig(predictor="oracle")
    with pytest.raises(ValueError):
        SimnetClosedLoopConfig(background_jobs=-1)
    with pytest.raises(ValueError):
        SimnetClosedLoopConfig(background_jobs=1)  # hosts_per_leaf too small
    with pytest.raises(ValueError):
        SimnetClosedLoopConfig(predictor="learned", warmup_iterations=0)
