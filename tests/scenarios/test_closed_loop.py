"""End-to-end tests for the packet-level closed loop.

The flagship test is the paper's full operator story on real packets:
a silent drop fault appears mid-run, FlowPulse detects it from tagged
switch counters, localizes it to the faulted cable, the control plane
disables that cable between iterations, and the remaining iterations
run quiet under the detection threshold.
"""

from __future__ import annotations

from repro.core.remediation import RemediationAction
from repro.scenarios import (
    FaultEvent,
    FaultScript,
    SimnetClosedLoopConfig,
    SimnetClosedLoopDriver,
    run_simnet_closed_loop,
)
from repro.simnet import DropFault

#: Small enough to run in seconds, large enough that round-robin packet
#: quantization noise (~mtu * spines * hosts / bytes = 0.8%) stays under
#: the 1% detection threshold.
CONFIG = SimnetClosedLoopConfig(
    n_leaves=5,
    n_spines=3,
    collective_bytes=1_000_000,
    mtu=512,
    n_iterations=8,
    threshold=0.01,
)

FAULT_LINK = "up:L2->S1"
FAULT_ITERATION = 2


def test_detect_localize_disable_recover_end_to_end():
    result = run_simnet_closed_loop(
        CONFIG,
        iteration_faults={
            FAULT_ITERATION: [
                FaultEvent(0, "inject", FAULT_LINK, DropFault(0.5))
            ]
        },
    )
    # The run itself survives the fault: no stall, no failed messages,
    # every iteration completes.
    assert not result.stalled
    assert result.failed_messages == 0
    assert result.iterations_completed == CONFIG.n_iterations

    # Detection fires the iteration the fault appears; localization
    # points at the faulted link.
    assert result.detection_iteration == FAULT_ITERATION
    detection_step = result.steps[FAULT_ITERATION]
    assert FAULT_LINK in detection_step.suspected_links
    assert detection_step.max_score > 0.1

    # Confirmation takes one more faulty iteration, then the cable is
    # disabled in the live control plane.
    assert result.remediation_iteration == FAULT_ITERATION + 1
    assert len(result.actions) == 1
    assert FAULT_LINK in result.actions[0].disabled_links
    assert FAULT_LINK in result.steps[-1].disabled_so_far

    # Temporal symmetry restored: the tail runs quiet, under 1%.
    assert result.recovered
    assert result.post_remediation_max_score < 0.01
    # The fault was injected exactly once, at the scripted boundary.
    assert [e.action for _, e in result.applied_fault_events] == ["inject"]


def test_healthy_run_never_alarms():
    config = SimnetClosedLoopConfig(
        n_leaves=5,
        n_spines=3,
        collective_bytes=1_000_000,
        mtu=512,
        n_iterations=4,
        threshold=0.01,
    )
    result = run_simnet_closed_loop(config)
    assert result.iterations_completed == 4
    assert result.detection_iteration is None
    assert result.actions == []
    assert result.failed_messages == 0
    assert all(s.max_score < 0.01 for s in result.steps)


def test_wall_clock_fault_script_fires_mid_run():
    config = SimnetClosedLoopConfig(
        n_leaves=5,
        n_spines=3,
        collective_bytes=1_000_000,
        mtu=512,
        n_iterations=6,
        threshold=0.01,
    )
    # 100 us is early inside iteration 0 for this config.
    script = FaultScript().inject(100_000, FAULT_LINK, DropFault(0.5))
    result = run_simnet_closed_loop(config, script=script)
    assert len(result.applied_fault_events) == 1
    fired_at, event = result.applied_fault_events[0]
    assert fired_at == 100_000
    assert event.link == FAULT_LINK
    # The fault lands partway through an iteration window; the partial
    # deficit may dilute below threshold, so the alarm is only
    # guaranteed once a full window runs under the fault.
    assert result.detection_iteration is not None
    assert result.detection_iteration <= 2
    assert result.actions
    assert result.recovered


def test_partitioning_remediation_is_vetoed():
    driver = SimnetClosedLoopDriver(CONFIG)
    spec = CONFIG.spec()
    # An action that would take leaf 0 off every spine: the driver must
    # refuse it and leave the control plane untouched.
    all_uplinks = frozenset(
        link
        for spine in range(spec.n_spines)
        for link in (f"up:L0->S{spine}", f"down:S{spine}->L0")
    )
    lethal = RemediationAction(
        iteration=0,
        cables=frozenset((0, s) for s in range(spec.n_spines)),
        disabled_links=all_uplinks,
    )
    assert driver._apply_action(lethal) is False
    assert driver.network.control.known_disabled == frozenset()

    # A single-cable action is benign and goes through.
    benign = RemediationAction(
        iteration=0,
        cables=frozenset({(0, 0)}),
        disabled_links=frozenset({"up:L0->S0", "down:S0->L0"}),
    )
    assert driver._apply_action(benign) is True
    assert "up:L0->S0" in driver.network.control.known_disabled
