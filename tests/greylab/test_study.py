"""Tests for the gray-failure study harness."""

from __future__ import annotations

import io

import pytest

from repro.greylab import (
    CONGESTION_LEVELS,
    POLICY_SETTINGS,
    STUDY_COLUMNS,
    CellResult,
    GreylabError,
    RemediationTrialSpec,
    StudyCell,
    StudyConfig,
    StudyResult,
    compare_remediations,
    run_study_cell,
)
from repro.report.tables import read_csv


def _cell(**overrides):
    base = dict(
        kind="gray_conditional",
        spray="random",
        congestion="none",
        seeds=(0,),
        collective_bytes=600_000,
        n_iterations=6,
        mtu=512,
    )
    base.update(overrides)
    return StudyCell(**base)


# ----------------------------------------------------------------------
# Configuration and matrix shape
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(GreylabError):
        StudyConfig(sprays=("warp",))
    with pytest.raises(GreylabError):
        StudyConfig(congestion_levels=("molten",))
    with pytest.raises(GreylabError):
        StudyConfig(seeds_per_cell=0)
    with pytest.raises(GreylabError):
        StudyConfig(kinds=())


def test_cells_enumerate_the_full_matrix():
    config = StudyConfig(
        kinds=("congested_healthy", "gray_conditional"),
        sprays=("round_robin", "ecmp"),
        congestion_levels=("none", "heavy"),
        seeds_per_cell=3,
        base_seed=10,
    )
    cells = config.cells()
    assert len(cells) == 2 * 2 * 2
    assert all(cell.seeds == (10, 11, 12) for cell in cells)
    combos = {(c.kind, c.spray, c.congestion) for c in cells}
    assert len(combos) == 8


def test_cell_calibration_follows_the_policy():
    assert _cell(spray="round_robin").threshold == 0.05
    assert _cell(spray="random").threshold == 0.2
    assert _cell(spray="ecmp").predictor == "learned"
    assert set(POLICY_SETTINGS) == {"round_robin", "random", "adaptive", "ecmp"}
    assert CONGESTION_LEVELS["none"] is None


def test_cell_chaos_config_wires_congestion_level():
    chaos = _cell(congestion="heavy").chaos_config()
    assert chaos.ecn_threshold_bytes == 4096
    assert chaos.congestion is not None
    assert chaos.kinds == ("gray_conditional",)
    off = _cell(congestion="none").chaos_config()
    assert off.ecn_threshold_bytes is None
    assert off.congestion is None


# ----------------------------------------------------------------------
# Cell execution and invariants
# ----------------------------------------------------------------------
def test_run_study_cell_detects_a_seeded_gray_fault():
    result = run_study_cell(_cell(seeds=(0,)))
    assert result.n_runs == 1
    assert result.ok, result.violations
    assert result.detections == 1
    assert result.false_positives == 0
    assert result.demanded_detections == 1
    assert result.latencies and result.latencies[0] >= 0


def test_cotenant_cells_tolerate_crosstalk_alarms_but_not_stalls():
    cell = _cell(kind="cotenant")
    quiet = CellResult(cell=cell, n_runs=2, n_ok=1, violations=("seed=0: false positive ...",))
    assert not quiet.kind_invariants_violated()
    stalled = CellResult(cell=cell, n_runs=2, n_ok=1, violations=("seed=0: liveness: run stalled ...",))
    assert stalled.kind_invariants_violated()
    strict = CellResult(cell=_cell(), n_runs=2, n_ok=1, violations=("seed=0: false positive ...",))
    assert strict.kind_invariants_violated()


def test_csv_roundtrips_through_report_tables():
    cell_result = run_study_cell(_cell(seeds=(0,)))
    study = StudyResult(config=StudyConfig(), cells=[cell_result])
    buffer = io.StringIO()
    assert study.write_csv(buffer) == 1
    buffer.seek(0)
    rows = read_csv(buffer)
    assert len(rows) == 1
    row = rows[0]
    assert tuple(row) == STUDY_COLUMNS
    assert row["kind"] == "gray_conditional"
    assert row["spray"] == "random"
    assert row["threshold"] == 0.2
    assert row["detections"] == 1
    assert isinstance(row["n_runs"], int)


# ----------------------------------------------------------------------
# Remediation face-off
# ----------------------------------------------------------------------
def test_remediation_trial_spec_builds_both_arms():
    spec = RemediationTrialSpec(seed=4)
    disable = spec.chaos_config("disable")
    reroute = spec.chaos_config("reroute")
    assert disable.remediation == "disable"
    assert reroute.remediation == "reroute"
    assert disable.kinds == ("gray_conditional",)
    # The scenario draw is remediation-independent: both arms replay
    # the identical fault.
    assert disable.base_seed == reroute.base_seed


def test_compare_remediations_requires_seeds():
    with pytest.raises(GreylabError):
        compare_remediations(seeds=())


def test_compare_remediations_single_seed():
    comparison = compare_remediations(seeds=(0,))
    assert len(comparison.trials) == 1
    trial = comparison.trials[0]
    assert trial.fault_link is not None
    assert trial.remediated
    assert trial.disable.mode == "disable"
    assert trial.reroute.mode == "reroute"
    # Disable takes the cable down; reroute leaves it administratively
    # up but out of the spray set — both must recover.
    assert trial.disable.recovered
    assert trial.reroute.recovered
    rows = comparison.rows()
    assert len(rows) == 2
    assert "remediated" in comparison.summary()
