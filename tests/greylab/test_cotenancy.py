"""Tests for multi-job co-tenancy on one fabric."""

from __future__ import annotations

import pytest

from repro.fleet import read_fprec
from repro.greylab import (
    CotenancyConfig,
    GreylabError,
    cotenant_workload,
    run_cotenancy,
    write_cotenant_workload,
)

#: Small enough to run in a couple of seconds; three one-host-per-leaf
#: rings sharing every leaf uplink.
CONFIG = CotenancyConfig(
    n_jobs=2,
    n_leaves=3,
    n_spines=2,
    collective_bytes=150_000,
    n_iterations=3,
    mtu=512,
    threshold=0.2,
)


def test_config_validation():
    with pytest.raises(GreylabError):
        CotenancyConfig(n_jobs=1)
    with pytest.raises(GreylabError):
        CotenancyConfig(n_leaves=1)
    with pytest.raises(GreylabError):
        CotenancyConfig(n_iterations=0)


def test_job_ids_and_spec_shape():
    assert CONFIG.job_ids == (1, 2)
    spec = CONFIG.spec()
    assert spec.n_leaves == 3
    assert spec.hosts_per_leaf == CONFIG.n_jobs


def test_cotenant_jobs_share_fabric_and_stay_quiet():
    result = run_cotenancy(CONFIG)
    assert result.ok, result.summary()
    assert set(result.jobs) == {1, 2}
    for job in result.jobs.values():
        assert job.iterations_completed == CONFIG.n_iterations
        assert not job.stalled
        assert len(job.steps) == CONFIG.n_iterations
        assert len(job.records) == CONFIG.n_iterations
    # Symmetric sharing: co-tenant load alone must not alarm either
    # job's monitor.
    assert result.triggered_jobs == frozenset()
    assert "quiet" in result.summary()


def test_cotenant_workload_capture_shape():
    jobs, batches, result = cotenant_workload(CONFIG)
    assert [j.job_id for j in jobs] == [1, 2]
    # No injected ground truth on a shared fabric.
    assert all(j.faulted is None for j in jobs)
    assert all(j.experiment.n_leaves == CONFIG.n_leaves for j in jobs)
    # Round-robin interleave by iteration: job 1 iter 0, job 2 iter 0,
    # job 1 iter 1, ...
    assert len(batches) == CONFIG.n_jobs * CONFIG.n_iterations
    tags = [(b.records[0].tag.job_id, b.records[0].tag.iteration) for b in batches]
    assert tags == [(1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (2, 2)]


def test_write_cotenant_workload_roundtrips(tmp_path):
    target = tmp_path / "cotenant.fprec"
    jobs, n_units = write_cotenant_workload(CONFIG, target)
    assert n_units > 0
    content = read_fprec(target)
    assert [j.job_id for j in content.jobs] == [j.job_id for j in jobs]
    assert len(content.batches) == CONFIG.n_jobs * CONFIG.n_iterations
