"""Tests for the gray-failure laboratory."""
