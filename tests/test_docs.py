"""Documentation consistency: the docs must track the code."""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.collectives",
    "repro.core",
    "repro.core.prediction",
    "repro.fastsim",
    "repro.fleet",
    "repro.fleet.ha",
    "repro.greylab",
    "repro.simnet",
    "repro.telemetry",
    "repro.threelevel",
    "repro.topology",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_public_api_importable(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} exported but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_every_public_symbol_documented(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{package}.{name} has no docstring"


def test_design_module_map_matches_tree():
    design = (ROOT / "DESIGN.md").read_text()
    for module in (
        "engine.py",
        "spraying.py",
        "transport.py",
        "counters.py",
        "analytical.py",
        "learning.py",
        "detection.py",
        "localization.py",
        "calibration.py",
        "baselines.py",
        "experiments.py",
        "closed_loop.py",
        "recursive.py",
        "hierarchical.py",
    ):
        assert module in design, f"DESIGN.md does not mention {module}"
    # And the named modules actually exist.
    for path in re.findall(r"(\w+/[\w/]+\.py)", design):
        candidate = ROOT / "src" / "repro" / path
        if not candidate.exists():
            candidate = ROOT / "src" / "repro" / path.split("/", 1)[-1]
        assert candidate.exists() or (ROOT / path).exists(), path


def test_readme_quickstart_snippet_runs():
    """The README's programmatic quickstart must execute as written."""
    readme = (ROOT / "README.md").read_text()
    match = re.search(
        r"```python\n(from repro.analysis import.*?)```", readme, re.S
    )
    assert match, "README quickstart snippet missing"
    snippet = match.group(1)
    # Shrink the fabric so the doc snippet stays fast in CI.
    namespace: dict = {}
    exec(compile(snippet, "<README>", "exec"), namespace)  # noqa: S102


def test_experiments_covers_every_benchmark():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for bench in (ROOT / "benchmarks").glob("test_*.py"):
        if bench.name == "test_simulator_performance.py":
            continue  # substrate characterization, not a paper result
        assert bench.name in experiments or bench.stem.split("test_")[1] in (
            experiments.lower()
        ), f"EXPERIMENTS.md does not reference {bench.name}"


def test_examples_listed_in_readme():
    readme = (ROOT / "README.md").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        if example.name == "quickstart.py":
            continue  # featured separately
        assert example.name in readme, f"README does not list {example.name}"
