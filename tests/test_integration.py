"""End-to-end integration tests: packet simulator -> switch collectors
-> FlowPulse monitor, exercising the paper's full pipeline at reduced
scale (the benchmarks run the paper-size configurations).

Detection-focused tests use the deterministic ``round_robin`` spray so
that collective sizes stay packet-sim friendly while spray noise stays
far below the detection threshold; the statistical noise behaviour of
``random`` spraying is validated against fastsim in
tests/fastsim/test_agreement.py and exercised at scale by the
benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import (
    DemandMatrix,
    JitterModel,
    StagedCollectiveRunner,
    Transfer,
    locality_optimized_ring,
    ring_demand,
    ring_reduce_scatter_stages,
)
from repro.core import (
    AnalyticalPredictor,
    DetectionConfig,
    FlowPulseMonitor,
    LearnedPredictor,
)
from repro.simnet import DropFault, FlowTag, IterationRecord, Network
from repro.topology import ClosSpec, down_link, up_link


SPEC = ClosSpec(n_leaves=8, n_spines=4, hosts_per_leaf=1)
TOTAL = 2_000_000
MTU = 512


def records_matrix(collectors, iterations, job_id=1):
    """Per-iteration record lists, synthesizing empty records for leaves
    that saw no tagged traffic (their collectors never opened a window)."""
    matrix = []
    for i in range(iterations):
        row = []
        for leaf, collector in enumerate(collectors):
            per_iter = {r.tag.iteration: r for r in collector.records}
            row.append(
                per_iter.get(
                    i,
                    IterationRecord(
                        leaf=leaf,
                        tag=FlowTag(job_id, i),
                        port_bytes={},
                        sender_bytes={},
                        start_ns=0,
                        end_ns=0,
                    ),
                )
            )
        matrix.append(row)
    return matrix


def run_monitored(
    fault=None,
    iterations=4,
    seed=0,
    threshold=0.05,
    spray="round_robin",
    jitter=JitterModel(),
    known_disabled=frozenset(),
    stages=None,
    demand=None,
    rto_ns=5_000,
):
    """Run a ring collective on simnet and monitor it with FlowPulse."""
    net = Network(
        SPEC,
        seed=seed,
        spray=spray,
        mtu=MTU,
        known_disabled=known_disabled,
        rto_ns=rto_ns,
    )
    if fault:
        link, rate = fault
        net.inject_fault(link, DropFault(rate))
    collectors = net.install_collectors(job_id=1)
    if stages is None:
        ring = locality_optimized_ring(SPEC.n_hosts)
        stages = ring_reduce_scatter_stages(ring, TOTAL)
    if demand is None:
        demand = DemandMatrix.from_stages(stages)
    StagedCollectiveRunner(net, 1, stages, iterations=iterations, jitter=jitter).run()
    net.finalize_collectors()

    predictor = AnalyticalPredictor(SPEC, demand, known_disabled=known_disabled)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=threshold))
    return monitor.process_run(records_matrix(collectors, iterations)), net


def test_healthy_fabric_stays_quiet():
    verdict, _ = run_monitored(seed=1)
    assert not verdict.triggered


def test_down_fault_detected_and_cable_localized():
    fault_link = down_link(1, 3)
    verdict, net = run_monitored(fault=(fault_link, 0.3), seed=2)
    assert verdict.triggered
    assert net.total_fault_drops() > 0
    assert fault_link in verdict.suspected_links()


def test_up_fault_detected_with_cable_candidates():
    fault_link = up_link(2, 1)  # leaf 2's uplink to spine 1
    verdict, _ = run_monitored(fault=(fault_link, 0.3), seed=3)
    assert verdict.triggered
    # Leaf 3 (ring successor of 2) observes; candidates include the
    # true upstream cable.
    assert fault_link in verdict.suspected_links()


def test_detection_with_preexisting_known_faults():
    """Temporal symmetry's selling point: the fault-aware model absorbs
    pre-existing disconnects; only the new silent fault alarms."""
    disabled = frozenset({up_link(5, 0), down_link(0, 5)})
    # Healthy run with pre-existing faults: quiet.
    verdict, _ = run_monitored(known_disabled=disabled, seed=4)
    assert not verdict.triggered
    # New silent fault on top: detected.
    fault_link = down_link(2, 6)
    verdict, _ = run_monitored(
        fault=(fault_link, 0.3), known_disabled=disabled, seed=5
    )
    assert verdict.triggered
    assert fault_link in verdict.suspected_links()


def test_jitter_and_stragglers_do_not_cause_false_alarms():
    """§4/§5.1: volume-based temporal symmetry is straggler-oblivious
    for single-sender-per-leaf collectives."""
    jitter = JitterModel(
        max_jitter_ns=50_000, straggler_prob=0.3, straggler_delay_ns=200_000
    )
    verdict, _ = run_monitored(jitter=jitter, seed=6)
    assert not verdict.triggered


def test_round_robin_noise_floor_below_random():
    """Deterministic spraying splits far more evenly than random: the
    healthy-run worst deviation (the detector's noise floor) must drop
    by an order of magnitude."""
    random_verdict, _ = run_monitored(seed=7, spray="random", threshold=0.5)
    rr_verdict, _ = run_monitored(seed=7, spray="round_robin", threshold=0.5)
    assert rr_verdict.max_score < random_verdict.max_score / 5


def test_multi_sender_localization_disambiguates_remote():
    """Fig. 4's actual scenario: two senders share the observed port; a
    fault on one sender's uplink is localized as remote, uniquely."""
    # Leaves 1 and 2 both send to leaf 0.
    stages = [
        [Transfer(src=1, dst=0, size=TOTAL), Transfer(src=2, dst=0, size=TOTAL)]
    ]
    fault_link = up_link(1, 2)  # sender leaf 1 -> spine 2
    # A 2:1 incast queues data at the receiver's downlink; the paper's
    # 5 us RTO (tuned for an uncongested ring) would fire spuriously, so
    # size it to the incast drain time.
    verdict, _ = run_monitored(
        fault=(fault_link, 0.3), stages=stages, seed=8, rto_ns=1_000_000
    )
    assert verdict.triggered
    suspicions = [
        s
        for v in verdict.verdicts
        for loc in v.localizations
        for s in loc.suspicions
    ]
    remote = [s for s in suspicions if s.kind == "remote"]
    assert remote
    assert all(s.link == fault_link for s in remote)
    # The local link is NOT suspected: leaf 2's traffic through spine 2
    # arrived intact, so the deficit cannot be on the shared link.
    assert down_link(2, 0) not in {s.link for s in suspicions}


def test_learning_predictor_full_pipeline_on_simnet():
    """Learn the baseline from the first packet-simulated iterations,
    then catch a fault injected mid-run."""
    net = Network(SPEC, seed=9, spray="round_robin", mtu=MTU)
    collectors = net.install_collectors(job_id=1)
    ring = locality_optimized_ring(SPEC.n_hosts)
    stages = ring_reduce_scatter_stages(ring, TOTAL)

    fault_link = down_link(3, 4)
    injected = {"done": False}

    def maybe_inject(iteration, now):
        if iteration == 3 and not injected["done"]:
            net.inject_fault(fault_link, DropFault(0.35))
            injected["done"] = True

    StagedCollectiveRunner(
        net, 1, stages, iterations=7, on_iteration_done=maybe_inject
    ).run()
    net.finalize_collectors()

    predictor = LearnedPredictor(warmup_iterations=3, deviation_trigger=0.05)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=0.05))
    verdict = monitor.process_run(records_matrix(collectors, 7))
    assert verdict.triggered
    assert verdict.first_detection_iteration >= 4
    assert fault_link in verdict.suspected_links()


def test_detection_latency_is_one_iteration():
    """§6: 'instantaneous' detection — the first faulty iteration
    already trips the detector."""
    verdict, _ = run_monitored(fault=(down_link(0, 1), 0.3), seed=10)
    assert verdict.first_detection_iteration == 0


def test_scores_scale_with_severity_on_simnet():
    scores = []
    for rate in (0.1, 0.2, 0.4):
        verdict, _ = run_monitored(fault=(down_link(1, 2), rate), seed=11)
        scores.append(verdict.max_score)
    assert scores == sorted(scores)


def test_fault_inflates_iteration_completion_time():
    """The paper's motivation (§1): faults inflate flow (and hence
    iteration) completion times via retransmission stalls — the damage
    FlowPulse exists to stop early."""
    def iteration_time(fault_rate):
        net = Network(SPEC, seed=41, spray="round_robin", mtu=MTU)
        if fault_rate:
            net.inject_fault(down_link(1, 3), DropFault(fault_rate))
        ring = locality_optimized_ring(SPEC.n_hosts)
        stages = ring_reduce_scatter_stages(ring, TOTAL)
        runner = StagedCollectiveRunner(net, 1, stages, iterations=1)
        (start, end), = runner.run()
        return end - start

    healthy = iteration_time(0.0)
    faulty = iteration_time(0.3)
    # 30% loss on one path forces RTO stalls on the ring's critical
    # path every stage: a large, user-visible slowdown.
    assert faulty > healthy * 1.5


def test_intermittent_fault_detected_in_active_iterations_only():
    """A flapping fault (paper §7 'Fault Types'): iterations overlapping
    the fault's active window alarm; the others stay quiet."""
    from repro.simnet import TransientDropFault

    net = Network(SPEC, seed=42, spray="round_robin", mtu=MTU)
    collectors = net.install_collectors(job_id=1)
    ring = locality_optimized_ring(SPEC.n_hosts)
    stages = ring_reduce_scatter_stages(ring, TOTAL)
    runner = StagedCollectiveRunner(
        net, 1, stages, iterations=4, compute_time_ns=50_000
    )
    runner.start()
    net.run(until=1)  # materialize iteration timing baseline
    # Fault active only during a window covering iterations 1-2.
    net.run()
    times = runner.iteration_times
    window = (times[1][0], times[2][1])
    # Re-run with the fault scheduled over that window.
    net2 = Network(SPEC, seed=42, spray="round_robin", mtu=MTU)
    collectors2 = net2.install_collectors(job_id=1)
    runner2 = StagedCollectiveRunner(
        net2, 1, stages, iterations=4, compute_time_ns=50_000
    )
    net2.inject_fault(
        down_link(1, 3),
        TransientDropFault(rate=0.3, start_ns=window[0], end_ns=window[1]),
    )
    runner2.run()
    net2.finalize_collectors()
    demand = ring_demand(locality_optimized_ring(SPEC.n_hosts), TOTAL)
    monitor = FlowPulseMonitor(
        AnalyticalPredictor(SPEC, demand), DetectionConfig(threshold=0.05)
    )
    verdict = monitor.process_run(records_matrix(collectors2, 4))
    flagged = [v.iteration for v in verdict.verdicts if v.triggered]
    assert flagged  # the transient window was caught
    assert set(flagged) <= {1, 2}
    assert 0 not in flagged and 3 not in flagged


def test_blocking_network_with_pfc_and_background(rng):
    """§7 'Blocking Networks': an oversubscribed fabric (4 hosts per
    leaf, 2 spines) with finite buffers, PFC, and background congestion.
    The prioritized measured collective still completes losslessly and
    its volumes still match the prediction."""
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=4)
    net = Network(
        spec,
        seed=31,
        spray="round_robin",
        mtu=512,
        queue_capacity=512 * 1024,
        enable_pfc=True,
        rto_ns=2_000_000,  # congestion inflates RTTs; avoid spurious retx
    )
    collectors = net.install_collectors(job_id=1)

    # Measured job: one ring participant per leaf (hosts 0, 4, 8, 12),
    # the paper's single-non-local-flow-per-leaf condition.
    ring = [0, 4, 8, 12]
    stages = ring_reduce_scatter_stages(ring, 400_000)
    runner = StagedCollectiveRunner(net, 1, stages, iterations=2)

    # Background: the other hosts all-to-all at BACKGROUND priority.
    from repro.simnet import FlowTag, Priority

    others = [h for h in range(spec.n_hosts) if h not in ring]
    for i, src in enumerate(others):
        dst = others[(i + 5) % len(others)]
        if dst != src:
            net.host(src).send(
                dst,
                400_000,
                tag=FlowTag(99, 0),
                priority=Priority.BACKGROUND,
            )
    runner.run()
    net.finalize_collectors()

    # Lossless: nothing overflowed anywhere.
    assert all(link.overflow_packets == 0 for link in net.links.values())
    # PFC actually engaged under this load.
    assert any(c.pauses_sent > 0 for c in net.pfc_controllers)

    demand = DemandMatrix.from_stages(stages)
    predictor = AnalyticalPredictor(spec, demand)
    monitor = FlowPulseMonitor(predictor, DetectionConfig(threshold=0.05))
    verdict = monitor.process_run(records_matrix(collectors, 2))
    assert not verdict.triggered


def test_volume_conservation_across_pipeline():
    """The bytes the monitor sees equal the collective's demand: nothing
    is lost or double-counted end to end (lossless fabric + dedupe)."""
    verdict, net = run_monitored(seed=12, iterations=2)
    demand = ring_demand(locality_optimized_ring(SPEC.n_hosts), TOTAL)
    expected = demand.nonlocal_bytes(SPEC)
    total_observed = 0
    for leaf in net.leaves:
        for collector in leaf.collectors:
            for record in collector.records:
                total_observed += record.total_bytes
    assert total_observed == expected * 2  # two iterations
