"""Tests for host behaviour and edge cases."""

from __future__ import annotations

import pytest

from repro.simnet import FlowTag, Network, Packet, PacketKind
from repro.topology import ClosSpec


def make_net():
    return Network(ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=1), seed=1)


def test_multiple_receive_callbacks_all_fire():
    net = make_net()
    seen_a, seen_b = [], []
    net.host(1).on_message(lambda src, mid, tag, size: seen_a.append(size))
    net.host(1).on_message(lambda src, mid, tag, size: seen_b.append(size))
    net.host(0).send(1, 1234)
    net.run()
    assert seen_a == [1234]
    assert seen_b == [1234]


def test_misdelivered_packet_raises():
    net = make_net()
    stray = Packet(src_host=0, dst_host=1, size=10)
    with pytest.raises(RuntimeError, match="received packet for host"):
        net.host(0).receive(stray, net.link("hostdown:H0"))


def test_received_bytes_accumulate():
    net = make_net()
    net.host(1).on_message(lambda *a: None)
    net.host(0).send(1, 1000)
    net.host(0).send(1, 2000)
    net.run()
    assert net.host(1).received_messages == 2
    assert net.host(1).received_bytes == 3000


def test_probe_packets_consumed_silently():
    net = make_net()
    probe = Packet(src_host=0, dst_host=1, size=64, kind=PacketKind.PROBE)
    net.host(1).receive(probe, net.link("hostdown:H1"))  # must not raise
    assert net.host(1).received_messages == 0


def test_tagged_and_untagged_messages_coexist():
    net = make_net()
    tags = []
    net.host(1).on_message(lambda src, mid, tag, size: tags.append(tag))
    net.host(0).send(1, 100, tag=FlowTag(7, 3))
    net.host(0).send(1, 100)
    net.run()
    assert sorted(tags, key=lambda t: t is not None) == [None, FlowTag(7, 3)]
