"""Property tests for the reliable transport: exactly-once delivery
under arbitrary segmentation and loss."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import DropFault, Network
from repro.topology import ClosSpec, down_link, up_link


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(1, 60_000),
    mtu=st.integers(64, 4096),
    drop_permille=st.integers(0, 600),
    seed=st.integers(0, 10_000),
)
def test_property_message_delivered_exactly_once(size, mtu, drop_permille, seed):
    spec = ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=1)
    net = Network(spec, seed=seed, spray="random", mtu=mtu, rto_ns=50_000)
    if drop_permille:
        net.inject_fault(down_link(0, 1), DropFault(drop_permille / 1000))
    deliveries = []
    net.host(1).on_message(lambda src, mid, tag, s: deliveries.append(s))
    net.host(0).send(1, size)
    net.run()
    assert deliveries == [size]
    # Sender-side completion matches.
    assert net.host(0).transport.completed_messages == 1
    assert net.host(0).transport.inflight_messages == 0


@settings(max_examples=12, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 20_000), min_size=1, max_size=6),
    seed=st.integers(0, 10_000),
)
def test_property_concurrent_messages_all_delivered(sizes, seed):
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    net = Network(spec, seed=seed, spray="random", mtu=512, rto_ns=200_000)
    net.inject_fault(up_link(0, 0), DropFault(0.2))
    received = []
    for dst in (1, 2, 3):
        net.host(dst).on_message(lambda src, mid, tag, s: received.append(s))
    for i, size in enumerate(sizes):
        net.host(0).send(1 + i % 3, size)
    net.run()
    assert sorted(received) == sorted(sizes)


@settings(max_examples=12, deadline=None)
@given(
    drop_permille=st.integers(100, 500),
    seed=st.integers(0, 10_000),
)
def test_property_counted_ingress_equals_size_plus_duplicates(
    drop_permille, seed
):
    """The tagged ingress volume equals the message size plus the bytes
    of duplicate copies (ACK-loss retransmits) — never less."""
    from repro.simnet import FlowTag

    spec = ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=1)
    net = Network(spec, seed=seed, spray="random", mtu=512, rto_ns=50_000)
    # Loss on the ACK return path provokes duplicates.
    net.inject_fault(up_link(1, 0), DropFault(drop_permille / 1000))
    collectors = net.install_collectors(job_id=1)
    net.host(1).on_message(lambda *a: None)
    size = 20_000
    net.host(0).send(1, size, tag=FlowTag(1, 0))
    net.run()
    record = collectors[1].finalize(net.now)
    duplicates = net.host(1).transport.duplicate_packets
    assert record.total_bytes >= size
    if duplicates == 0:
        assert record.total_bytes == size
