"""Tests for link serialization, delivery, faults, and pausing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.simnet import (
    DropFault,
    FaultInjector,
    Link,
    Node,
    Packet,
    Priority,
    Simulator,
    Tracer,
)


class Sink(Node):
    """Records deliveries."""

    name = "sink"

    def __init__(self):
        self.received = []

    def receive(self, packet, link):
        self.received.append((packet, link.sim.now))


def make_link(rate_bps=8 * units.GBPS, prop=100, injector=None, capacity=None, tracer=None):
    sim = Simulator()
    sink = Sink()
    rng = np.random.Generator(np.random.PCG64(0))
    link = Link(
        sim,
        "test-link",
        sink,
        rate_bps,
        prop,
        rng,
        injector=injector,
        queue_capacity=capacity,
        tracer=tracer,
    )
    return sim, link, sink


def _pkt(size=1000, priority=Priority.NORMAL):
    return Packet(src_host=0, dst_host=1, size=size, priority=priority)


def test_delivery_time_is_serialization_plus_propagation():
    sim, link, sink = make_link(rate_bps=8 * units.GBPS, prop=100)
    link.enqueue(_pkt(size=1000))  # 1000 B at 8 Gbps = 1000 ns
    sim.run()
    assert len(sink.received) == 1
    _, t = sink.received[0]
    assert t == 1000 + 100


def test_back_to_back_packets_serialize_sequentially():
    sim, link, sink = make_link(rate_bps=8 * units.GBPS, prop=0)
    link.enqueue(_pkt(size=1000))
    link.enqueue(_pkt(size=1000))
    sim.run()
    times = [t for _, t in sink.received]
    assert times == [1000, 2000]


def test_higher_priority_jumps_queue():
    sim, link, sink = make_link(prop=0)
    first = _pkt()
    low = _pkt(priority=Priority.BACKGROUND)
    high = _pkt(priority=Priority.MEASURED)
    link.enqueue(first)  # starts transmitting immediately
    link.enqueue(low)
    link.enqueue(high)
    sim.run()
    order = [p for p, _ in sink.received]
    assert order == [first, high, low]


def test_path_records_link_name():
    sim, link, sink = make_link()
    link.enqueue(_pkt())
    sim.run()
    packet, _ = sink.received[0]
    assert packet.path == ["test-link"]


def test_fault_drops_silently():
    injector = FaultInjector()
    injector.inject("test-link", DropFault(1.0))
    sim, link, sink = make_link(injector=injector)
    link.enqueue(_pkt())
    sim.run()
    assert sink.received == []
    assert link.faulted_packets == 1
    assert link.tx_packets == 1  # the sender-side counter still ticks


def test_fault_on_other_link_does_not_apply():
    injector = FaultInjector()
    injector.inject("other-link", DropFault(1.0))
    sim, link, sink = make_link(injector=injector)
    link.enqueue(_pkt())
    sim.run()
    assert len(sink.received) == 1


def test_partial_fault_drops_expected_fraction(rng):
    injector = FaultInjector()
    injector.inject("test-link", DropFault(0.3))
    sim, link, sink = make_link(injector=injector)
    n = 2000
    for _ in range(n):
        link.enqueue(_pkt(size=100))
    sim.run()
    dropped = link.faulted_packets
    assert dropped + len(sink.received) == n
    assert 0.25 * n < dropped < 0.35 * n


def test_statistics_accumulate():
    sim, link, sink = make_link()
    link.enqueue(_pkt(size=300))
    link.enqueue(_pkt(size=700))
    sim.run()
    assert link.tx_packets == 2
    assert link.tx_bytes == 1000
    assert link.delivered_packets == 2
    assert link.delivered_bytes == 1000


def test_queue_overflow_counts():
    sim, link, sink = make_link(capacity=1500)
    assert link.enqueue(_pkt(size=1000))  # immediately starts transmitting
    assert link.enqueue(_pkt(size=1000))  # queued
    # Queue holds 1000 (first left it); this one exceeds capacity.
    assert not link.enqueue(_pkt(size=1000))
    assert link.overflow_packets == 1


def test_pause_holds_priority():
    sim, link, sink = make_link(prop=0)
    link.pause(Priority.NORMAL)
    link.enqueue(_pkt())
    sim.run()
    assert sink.received == []
    link.resume(Priority.NORMAL)
    sim.run()
    assert len(sink.received) == 1


def test_pause_does_not_block_other_priorities():
    sim, link, sink = make_link(prop=0)
    link.pause(Priority.NORMAL)
    link.enqueue(_pkt(priority=Priority.NORMAL))
    link.enqueue(_pkt(priority=Priority.CONTROL))
    sim.run()
    assert [p.priority for p, _ in sink.received] == [Priority.CONTROL]


def test_pause_is_idempotent_and_tracked():
    _, link, _ = make_link()
    link.pause(Priority.NORMAL)
    link.pause(Priority.NORMAL)
    assert link.paused_priorities == frozenset({Priority.NORMAL})
    link.resume(Priority.NORMAL)
    assert link.paused_priorities == frozenset()


def test_on_tx_done_hook_fires_at_wire_time():
    sim, link, sink = make_link(rate_bps=8 * units.GBPS, prop=100)
    wire_times = []
    link.on_tx_done = lambda p: wire_times.append(sim.now)
    link.enqueue(_pkt(size=1000))
    sim.run()
    assert wire_times == [1000]  # before propagation completes


def test_tracer_records_tx_rx():
    tracer = Tracer()
    sim, link, sink = make_link(tracer=tracer)
    link.enqueue(_pkt())
    sim.run()
    assert tracer.counts["tx"] == 1
    assert tracer.counts["rx"] == 1


def test_tracer_records_drops():
    injector = FaultInjector()
    injector.inject("test-link", DropFault(1.0))
    tracer = Tracer()
    sim, link, sink = make_link(injector=injector, tracer=tracer)
    link.enqueue(_pkt())
    sim.run()
    assert tracer.counts["drop"] == 1
    assert len(tracer.drops()) == 1


def test_negative_propagation_rejected():
    sim = Simulator()
    rng = np.random.Generator(np.random.PCG64(0))
    with pytest.raises(ValueError):
        Link(sim, "bad", Sink(), units.GBPS, -5, rng)
