"""Tests for the ECN/DCQCN-style congestion layer."""

from __future__ import annotations

import pytest

from repro.simnet import (
    CongestionConfig,
    CongestionError,
    CongestionWindow,
    Packet,
    PacketKind,
    PriorityByteQueue,
)


def _data(size=100):
    return Packet(src_host=0, dst_host=1, size=size)


def _ack():
    return _data().make_ack()


# ----------------------------------------------------------------------
# CongestionConfig validation
# ----------------------------------------------------------------------
def test_config_defaults_are_valid():
    config = CongestionConfig()
    assert config.min_window <= config.initial_window <= config.max_window


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_window": 0},
        {"initial_window": 0},
        {"initial_window": 500, "max_window": 256},
        {"min_window": 10, "initial_window": 5},
        {"reduction_factor": 0.0},
        {"reduction_factor": 1.0},
        {"reduction_factor": 1.5},
        {"additive_increase": 0.0},
        {"additive_increase": -1.0},
    ],
)
def test_config_rejects_bad_parameters(kwargs):
    with pytest.raises(CongestionError):
        CongestionConfig(**kwargs)


# ----------------------------------------------------------------------
# CongestionWindow arithmetic
# ----------------------------------------------------------------------
def test_window_gates_sends_at_initial_window():
    window = CongestionWindow(CongestionConfig(initial_window=2))
    assert window.can_send
    window.on_send()
    assert window.can_send
    window.on_send()
    assert not window.can_send
    window.on_done()
    assert window.can_send


def test_clean_ack_is_additive_increase_capped_at_max():
    config = CongestionConfig(initial_window=4, max_window=6, additive_increase=1.0)
    window = CongestionWindow(config)
    for _ in range(10):
        window.on_ack(ecn_echo=False)
    assert window.window == pytest.approx(6.0)
    assert window.ecn_echoes == 0
    assert window.reductions == 0


def test_ecn_echo_is_multiplicative_decrease_floored_at_min():
    config = CongestionConfig(
        initial_window=32, min_window=2, reduction_factor=0.5
    )
    window = CongestionWindow(config)
    window.on_ack(ecn_echo=True)
    assert window.window == pytest.approx(16.0)
    for _ in range(10):
        window.on_ack(ecn_echo=True)
    assert window.window == pytest.approx(2.0)
    assert window.ecn_echoes == 11
    assert window.reductions == 11


def test_on_done_never_goes_negative():
    window = CongestionWindow(CongestionConfig())
    window.on_done()
    assert window.inflight == 0


# ----------------------------------------------------------------------
# Queue-side ECN marking
# ----------------------------------------------------------------------
def test_queue_without_threshold_never_marks():
    queue = PriorityByteQueue()
    for _ in range(50):
        packet = _data(size=1000)
        queue.push(packet)
        assert not packet.ecn
    assert queue.ecn_marked == 0


def test_queue_marks_data_at_or_above_threshold():
    queue = PriorityByteQueue(ecn_threshold_bytes=250)
    first, second, third = _data(), _data(), _data()
    queue.push(first)  # backlog 100 < 250
    queue.push(second)  # backlog 200 < 250
    queue.push(third)  # backlog 300 >= 250 -> marked
    assert not first.ecn
    assert not second.ecn
    assert third.ecn
    assert queue.ecn_marked == 1


def test_queue_never_marks_acks():
    queue = PriorityByteQueue(ecn_threshold_bytes=1)
    ack = _ack()
    queue.push(ack)
    assert not ack.ecn
    assert queue.ecn_marked == 0


def test_queue_does_not_double_count_marked_packets():
    queue = PriorityByteQueue(ecn_threshold_bytes=1)
    packet = _data()
    queue.push(packet)
    assert packet.ecn
    queue.pop()
    queue.push(packet)  # re-queued somewhere downstream, already marked
    assert queue.ecn_marked == 1


def test_queue_rejects_non_positive_threshold():
    with pytest.raises(ValueError):
        PriorityByteQueue(ecn_threshold_bytes=0)


# ----------------------------------------------------------------------
# ACK echo
# ----------------------------------------------------------------------
def test_ack_echoes_ecn_mark():
    packet = _data()
    assert not packet.make_ack().ecn
    packet.ecn = True
    ack = packet.make_ack()
    assert ack.ecn
    assert ack.kind is PacketKind.ACK
