"""Tests for the reliable transport over a real (small) fabric."""

from __future__ import annotations

import pytest

from repro.simnet import DropFault, FlowTag, Network, Priority, TransportError
from repro.topology import ClosSpec


def make_net(**kwargs):
    spec = ClosSpec(n_leaves=2, n_spines=2, hosts_per_leaf=1)
    defaults = dict(seed=3, spray="adaptive")
    defaults.update(kwargs)
    return Network(spec, **defaults)


def test_single_packet_message_delivered():
    net = make_net()
    done = []
    net.host(1).on_message(lambda src, mid, tag, size: done.append((src, size)))
    net.host(0).send(1, 500)
    net.run()
    assert done == [(0, 500)]


def test_multi_packet_message_reassembled():
    net = make_net(mtu=1000)
    done = []
    net.host(1).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(1, 4500)  # 4 full packets + 500B tail
    net.run()
    assert done == [4500]


def test_sender_side_completion_callback():
    net = make_net()
    acked = []
    net.host(0).send(1, 2000, on_acked=lambda msg: acked.append(msg.msg_id))
    net.run()
    assert len(acked) == 1
    assert net.host(0).transport.completed_messages == 1


def test_message_tag_propagates_to_receiver():
    net = make_net()
    tags = []
    net.host(1).on_message(lambda src, mid, tag, size: tags.append(tag))
    tag = FlowTag(job_id=9, iteration=3)
    net.host(0).send(1, 100, tag=tag)
    net.run()
    assert tags == [tag]


def test_loss_recovered_by_retransmission():
    net = make_net(mtu=1000)
    # Half the packets through spine 0's downlink die silently.
    net.inject_fault("down:S0->L1", DropFault(0.5))
    done = []
    net.host(1).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(1, 50_000)
    net.run()
    assert done == [50_000]
    assert net.total_fault_drops() > 0
    assert net.host(0).transport.retransmitted_packets >= net.total_fault_drops()


def test_full_silent_path_failure_recovered_via_respray():
    net = make_net(mtu=1000)
    from repro.simnet import DisconnectFault

    net.inject_fault("down:S0->L1", DisconnectFault(known=False))
    done = []
    net.host(1).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(1, 20_000)
    net.run()
    # Every packet eventually found the healthy spine.
    assert done == [20_000]


def test_duplicates_from_lost_acks_are_deduped():
    net = make_net(mtu=1000)
    # Drop ACKs (and data) crossing back: the reverse direction of the
    # data path is up:L1->S*, used by ACKs from host 1.
    net.inject_fault("up:L1->S0", DropFault(0.4))
    net.inject_fault("up:L1->S1", DropFault(0.4))
    done = []
    net.host(1).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(1, 30_000)
    net.run()
    assert done == [30_000]  # delivered exactly once despite duplicates
    assert net.host(1).transport.duplicate_packets > 0


def test_message_size_must_be_positive():
    net = make_net()
    with pytest.raises(TransportError):
        net.host(0).send(1, 0)


def test_loopback_rejected():
    net = make_net()
    with pytest.raises(TransportError):
        net.host(0).send(0, 100)


def test_invalid_mtu_rejected():
    with pytest.raises(TransportError):
        make_net(mtu=0)


def black_holed_net(**kwargs):
    """Both spines dead toward host 1: messages can never get through."""
    from repro.simnet import DisconnectFault

    net = make_net(mtu=1000, max_retransmissions=5, **kwargs)
    net.inject_fault("down:S0->L1", DisconnectFault(known=False))
    net.inject_fault("down:S1->L1", DisconnectFault(known=False))
    return net


def test_retransmission_cap_fails_message_gracefully():
    """Regression for the run-aborting TransportError: a silent total
    failure (DisconnectFault(known=False) on every path) degrades into
    a failed message, not an exception through the event loop."""
    net = black_holed_net()
    failures = []
    net.host(0).on_send_failed(
        lambda dst, mid, tag, size: failures.append((dst, size))
    )
    net.host(0).send(1, 1000)
    net.run()  # completes without raising
    transport = net.host(0).transport
    assert failures == [(1, 1000)]
    assert transport.failed_messages == 1
    assert net.host(0).failed_sends == 1
    assert transport.inflight_messages == 0


def test_giveup_cancels_sibling_packet_timers():
    """Abandoning a message cancels the timers of its other pending
    packets: the event queue drains instead of retrying a dead message."""
    net = black_holed_net()
    net.host(0).send(1, 5000)  # five packets, all doomed
    net.run()
    assert net.host(0).transport.failed_messages == 1
    assert net.sim.pending_events == 0


def test_per_message_on_failed_callback():
    net = black_holed_net()
    failed = []
    net.host(0).send(1, 1000, on_failed=lambda msg: failed.append(msg.msg_id))
    net.run()
    assert len(failed) == 1


def test_failed_message_emits_transport_failed_telemetry():
    class Recorder:
        def __init__(self):
            self.events = []

        def emit(self, type_, **fields):
            self.events.append((type_, fields))

        def counter(self, name, **labels):
            return self

        def inc(self, n=1):
            pass

        def histogram(self, name, **kw):
            return self

        def observe(self, v):
            pass

    recorder = Recorder()
    net = black_holed_net(telemetry=recorder)
    net.host(0).send(1, 1000)
    net.run()
    failed = [f for t, f in recorder.events if t == "transport.failed"]
    assert len(failed) == 1
    assert failed[0]["dst_host"] == 1


def test_retransmission_cap_raise_policy_preserved():
    from repro.simnet import GiveupPolicy

    net = black_holed_net(giveup=GiveupPolicy(GiveupPolicy.RAISE))
    net.host(0).send(1, 1000)
    with pytest.raises(TransportError, match="exceeded"):
        net.run()


def test_giveup_policy_rejects_unknown_mode():
    from repro.simnet import GiveupPolicy

    with pytest.raises(TransportError):
        GiveupPolicy("explode")


def test_inflight_accounting():
    net = make_net()
    transport = net.host(0).transport
    net.host(0).send(1, 5000)
    assert transport.inflight_messages == 1
    net.run()
    assert transport.inflight_messages == 0


def test_concurrent_messages_to_different_hosts():
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    net = Network(spec, seed=5)
    done = []
    for h in (1, 2, 3):
        net.host(h).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(1, 1000)
    net.host(0).send(2, 2000)
    net.host(0).send(3, 3000)
    net.run()
    assert sorted(done) == [1000, 2000, 3000]


def test_priority_honoured_end_to_end():
    net = make_net()
    order = []
    net.host(1).on_message(lambda src, mid, tag, size: order.append(size))
    # Queue a large low-priority message first, then a small measured one;
    # the measured message overtakes it at the host uplink queue.
    net.host(0).send(1, 400_000, priority=Priority.BACKGROUND)
    net.host(0).send(1, 4_000, priority=Priority.MEASURED)
    net.run()
    assert order == [4_000, 400_000]
