"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet import SimulationError, Simulator


def test_starts_at_time_zero():
    assert Simulator().now == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]
    assert sim.now == 10


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    for delay in (30, 10, 20):
        sim.schedule(delay, fired.append, delay)
    sim.run()
    assert fired == [10, 20, 30]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in ("a", "b", "c"):
        sim.schedule(5, fired.append, label)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(42, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 42


def test_cannot_schedule_into_past():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1, lambda: None)


def test_zero_delay_event_fires_now():
    sim = Simulator()
    sim.schedule(7, lambda: sim.schedule(0, fired.append, sim.now))
    fired = []
    sim.run()
    assert fired == [7]


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.schedule(1, chain, depth + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=1000)
    assert sim.now == 1000


def test_run_max_events():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i + 1, lambda: None)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert sim.pending_events == 7


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, 1)
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, 3)
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 3]


def test_cancel_prevents_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule(5, fired.append, "cancelled")
    sim.schedule(6, fired.append, "kept")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["kept"]


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    handle = sim.schedule(1, lambda: None)
    sim.run()
    handle.cancel()  # must not raise


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    handle = sim.schedule(5, lambda: None)
    sim.schedule(6, lambda: None)
    assert sim.pending_events == 2
    handle.cancel()
    assert sim.pending_events == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    assert sim.peek_time() == 5
    first.cancel()
    assert sim.peek_time() == 9


def test_peek_time_empty_queue():
    assert Simulator().peek_time() is None


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, reenter)
    sim.run()


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda a, b: seen.append((a, b)), "x", 2)
    sim.run()
    assert seen == [("x", 2)]


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_property_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.booleans()), min_size=1, max_size=100
    )
)
def test_property_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for idx, (delay, cancel) in enumerate(entries):
        handles.append((sim.schedule(delay, fired.append, idx), cancel))
    expected = []
    for idx, (handle, cancel) in enumerate(handles):
        if cancel:
            handle.cancel()
        else:
            expected.append(idx)
    sim.run()
    assert sorted(fired) == expected
