"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet import SimulationError, Simulator


def test_starts_at_time_zero():
    assert Simulator().now == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]
    assert sim.now == 10


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    for delay in (30, 10, 20):
        sim.schedule(delay, fired.append, delay)
    sim.run()
    assert fired == [10, 20, 30]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in ("a", "b", "c"):
        sim.schedule(5, fired.append, label)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(42, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 42


def test_cannot_schedule_into_past():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1, lambda: None)


def test_zero_delay_event_fires_now():
    sim = Simulator()
    sim.schedule(7, lambda: sim.schedule(0, fired.append, sim.now))
    fired = []
    sim.run()
    assert fired == [7]


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.schedule(1, chain, depth + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=1000)
    assert sim.now == 1000


def test_run_max_events():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i + 1, lambda: None)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert sim.pending_events == 7


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, 1)
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, 3)
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 3]


def test_cancel_prevents_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule(5, fired.append, "cancelled")
    sim.schedule(6, fired.append, "kept")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["kept"]


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    handle = sim.schedule(1, lambda: None)
    sim.run()
    handle.cancel()  # must not raise


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    handle = sim.schedule(5, lambda: None)
    sim.schedule(6, lambda: None)
    assert sim.pending_events == 2
    handle.cancel()
    assert sim.pending_events == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    assert sim.peek_time() == 5
    first.cancel()
    assert sim.peek_time() == 9


def test_peek_time_empty_queue():
    assert Simulator().peek_time() is None


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, reenter)
    sim.run()


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda a, b: seen.append((a, b)), "x", 2)
    sim.run()
    assert seen == [("x", 2)]


# ----------------------------------------------------------------------
# Edge cases: until/max_events interaction and cancelled-head handling
# ----------------------------------------------------------------------
def test_run_until_with_max_events_does_not_skip_clock_ahead():
    """Regression: when a run stops on max_events with events still
    pending at or before `until`, the clock must NOT fast-forward to
    `until` — doing so made the next run() raise "event queue went
    backwards in time" on the leftover events."""
    sim = Simulator()
    fired = []
    for t in (1, 2, 3, 4, 5):
        sim.schedule(t, fired.append, t)
    executed = sim.run(until=10, max_events=2)
    assert executed == 2
    assert fired == [1, 2]
    assert sim.now == 2  # not 10: events at 3..5 are still due

    # The leftover events must still run cleanly.
    sim.run()
    assert fired == [1, 2, 3, 4, 5]
    assert sim.now == 5


def test_run_until_max_events_fast_forwards_when_drained():
    """When max_events is generous enough to drain everything due by
    `until`, the idle-clock fast-forward still applies."""
    sim = Simulator()
    fired = []
    sim.schedule(3, fired.append, 3)
    sim.schedule(50, fired.append, 50)
    executed = sim.run(until=10, max_events=100)
    assert executed == 1
    assert fired == [3]
    assert sim.now == 10


def test_run_until_with_cancelled_head_event():
    """A cancelled event sitting at the head of the queue before
    `until` must not let run() fire a later real event past `until`."""
    sim = Simulator()
    fired = []
    head = sim.schedule(5, fired.append, "cancelled")
    sim.schedule(20, fired.append, "late")
    head.cancel()
    executed = sim.run(until=10)
    assert executed == 0
    assert fired == []
    assert sim.now == 10
    sim.run()
    assert fired == ["late"]
    assert sim.now == 20


def test_stop_prevents_idle_fast_forward():
    """stop() mid-run leaves the clock at the stopping event even when
    `until` lies further ahead, so pending events stay runnable."""
    sim = Simulator()
    fired = []
    sim.schedule(3, sim.stop)
    sim.schedule(5, fired.append, 5)
    sim.run(until=100)
    assert sim.now == 3
    sim.run()
    assert fired == [5]


def test_cancel_all_then_run_is_idle():
    sim = Simulator()
    handles = [sim.schedule(t, lambda: None) for t in (1, 2, 3)]
    for handle in handles:
        handle.cancel()
    assert sim.run() == 0
    assert sim.now == 0
    assert sim.events_executed == 0


def test_peek_time_purges_cancelled_run_of_events():
    sim = Simulator()
    handles = [sim.schedule(t, lambda: None) for t in (1, 2, 3)]
    keeper = sim.schedule(7, lambda: None)
    for handle in handles:
        handle.cancel()
    assert sim.peek_time() == 7
    assert sim.pending_events == 1
    assert not keeper.cancelled


def test_run_until_exact_event_time_fires_event():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 10)
    sim.run(until=10)
    assert fired == [10]
    assert sim.now == 10


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_property_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.integers(0, 1000), st.booleans()), min_size=1, max_size=100
    )
)
def test_property_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for idx, (delay, cancel) in enumerate(entries):
        handles.append((sim.schedule(delay, fired.append, idx), cancel))
    expected = []
    for idx, (handle, cancel) in enumerate(handles):
        if cancel:
            handle.cancel()
        else:
            expected.append(idx)
    sim.run()
    assert sorted(fired) == expected
