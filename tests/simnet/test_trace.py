"""Tests for the tracer."""

from __future__ import annotations

from repro.simnet import Network, PacketKind, Tracer
from repro.topology import ClosSpec


def run_traced(predicate=None, max_events=100_000):
    tracer = Tracer(max_events=max_events, predicate=predicate)
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0, mtu=1000, tracer=tracer)
    net.host(1).on_message(lambda *a: None)
    net.host(0).send(1, 5_000)
    net.run()
    return tracer


def test_records_events_with_counts():
    tracer = run_traced()
    assert tracer.counts["tx"] > 0
    assert tracer.counts["rx"] > 0
    assert "drop" not in tracer.counts


def test_events_for_packet_in_time_order():
    tracer = run_traced()
    pid = tracer.events[0].pid
    events = tracer.events_for_packet(pid)
    times = [e.time_ns for e in events]
    assert times == sorted(times)


def test_links_crossed_gives_full_path():
    tracer = run_traced()
    data_pids = {e.pid for e in tracer.events if e.kind == "data"}
    pid = min(data_pids)
    path = tracer.links_crossed(pid)
    assert path[0].startswith("hostup:")
    assert path[-1].startswith("hostdown:")
    assert len(path) == 4  # host->leaf->spine->leaf->host


def test_predicate_filters_recorded_events():
    tracer = run_traced(predicate=lambda p: p.kind is PacketKind.DATA)
    kinds = {e.kind for e in tracer.events}
    assert kinds == {"data"}
    # Counts agree with the recorded buffer; `seen` keeps the totals
    # including the ACKs the predicate filtered out.
    assert tracer.counts["rx"] == len([e for e in tracer.events if e.event == "rx"])
    assert tracer.seen["rx"] > tracer.counts["rx"]


def test_seen_equals_counts_without_predicate():
    tracer = run_traced()
    assert tracer.seen == tracer.counts


def test_bounded_buffer_evicts_oldest():
    tracer = run_traced(max_events=5)
    assert len(tracer.events) == 5


def test_summary_mentions_counts():
    tracer = run_traced()
    summary = tracer.summary()
    assert "tx=" in summary and "rx=" in summary


def test_event_str_is_informative():
    tracer = run_traced()
    text = str(tracer.events[0])
    assert "hostup:" in text or "up:" in text
