"""Tests for the priority byte queue."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet import Packet, Priority, PriorityByteQueue


def _pkt(size=100, priority=Priority.NORMAL):
    return Packet(src_host=0, dst_host=1, size=size, priority=priority)


def test_fifo_within_priority():
    q = PriorityByteQueue()
    a, b = _pkt(), _pkt()
    q.push(a)
    q.push(b)
    assert q.pop() is a
    assert q.pop() is b


def test_strict_priority_order():
    q = PriorityByteQueue()
    low = _pkt(priority=Priority.BACKGROUND)
    mid = _pkt(priority=Priority.NORMAL)
    high = _pkt(priority=Priority.MEASURED)
    ctrl = _pkt(priority=Priority.CONTROL)
    for p in (low, mid, high, ctrl):
        q.push(p)
    assert q.pop() is ctrl
    assert q.pop() is high
    assert q.pop() is mid
    assert q.pop() is low


def test_pop_empty_returns_none():
    assert PriorityByteQueue().pop() is None


def test_byte_accounting():
    q = PriorityByteQueue()
    q.push(_pkt(size=100))
    q.push(_pkt(size=250))
    assert q.bytes_used == 350
    assert len(q) == 2
    q.pop()
    assert q.bytes_used == 250
    assert len(q) == 1


def test_capacity_rejects_overflow():
    q = PriorityByteQueue(capacity_bytes=150)
    assert q.push(_pkt(size=100))
    assert not q.push(_pkt(size=100))
    assert len(q) == 1


def test_capacity_exact_fit_accepted():
    q = PriorityByteQueue(capacity_bytes=200)
    assert q.push(_pkt(size=100))
    assert q.push(_pkt(size=100))


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        PriorityByteQueue(capacity_bytes=0)


def test_skip_priorities_on_pop():
    q = PriorityByteQueue()
    normal = _pkt(priority=Priority.NORMAL)
    control = _pkt(priority=Priority.CONTROL)
    q.push(normal)
    q.push(control)
    # With CONTROL paused, NORMAL is served.
    assert q.pop(skip_priorities={Priority.CONTROL}) is normal
    assert q.pop(skip_priorities={Priority.CONTROL}) is None
    assert q.pop() is control


def test_peek_priority():
    q = PriorityByteQueue()
    assert q.peek_priority() is None
    q.push(_pkt(priority=Priority.NORMAL))
    q.push(_pkt(priority=Priority.MEASURED))
    assert q.peek_priority() is Priority.MEASURED
    assert q.peek_priority(skip_priorities={Priority.MEASURED}) is Priority.NORMAL


def test_bool_reflects_emptiness():
    q = PriorityByteQueue()
    assert not q
    q.push(_pkt())
    assert q


def test_backlog_callback_fires_on_push_and_pop():
    backlogs = []
    q = PriorityByteQueue(on_backlog_change=backlogs.append)
    q.push(_pkt(size=10))
    q.push(_pkt(size=20))
    q.pop()
    assert backlogs == [10, 30, 20]


def test_peak_bytes_tracks_high_watermark():
    q = PriorityByteQueue()
    q.push(_pkt(size=100))
    q.push(_pkt(size=100))
    q.pop()
    q.pop()
    assert q.peak_bytes == 200


@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(Priority)), st.integers(min_value=1, max_value=5000)
        ),
        min_size=1,
        max_size=60,
    )
)
def test_property_drain_order_is_priority_then_fifo(entries):
    q = PriorityByteQueue()
    packets = [_pkt(size=size, priority=pri) for pri, size in entries]
    for p in packets:
        q.push(p)
    drained = []
    while q:
        drained.append(q.pop())
    # Expected: stable sort by descending priority preserves FIFO within.
    expected = sorted(packets, key=lambda p: -p.priority.value)
    assert drained == expected
    assert q.bytes_used == 0


@given(st.lists(st.integers(1, 1000), min_size=0, max_size=50))
def test_property_bytes_used_equals_sum_of_contents(sizes):
    q = PriorityByteQueue()
    for size in sizes:
        q.push(_pkt(size=size))
    assert q.bytes_used == sum(sizes)
    popped = 0
    while q:
        popped += q.pop().size
    assert popped == sum(sizes)
