"""Tests for flow-completion-time tracking."""

from __future__ import annotations

from repro.collectives import (
    StagedCollectiveRunner,
    locality_optimized_ring,
    ring_reduce_scatter_stages,
)
from repro.simnet import DropFault, FlowTag, Network
from repro.simnet.stats import FctSummary, FctTracker
from repro.topology import ClosSpec, down_link


def make_net(**kwargs):
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=1)
    return Network(spec, seed=8, spray="round_robin", mtu=512, **kwargs)


def test_tracks_single_flow():
    net = make_net()
    tracker = FctTracker(net.hosts)
    net.host(0).send(2, 10_000)
    net.run()
    assert len(tracker.records) == 1
    record = tracker.records[0]
    assert record.src_host == 0
    assert record.dst_host == 2
    assert record.size_bytes == 10_000
    assert record.fct_ns > 0


def test_summary_percentiles():
    net = make_net()
    tracker = FctTracker(net.hosts)
    for dst in (1, 2, 3):
        net.host(0).send(dst, 20_000)
    net.run()
    summary = tracker.summary()
    assert summary.count == 3
    assert summary.p50_ns <= summary.p99_ns <= summary.max_ns
    assert summary.mean_ns > 0


def test_summary_empty_is_explicit():
    import math

    summary = FctSummary.of([])
    assert summary.count == 0
    assert math.isnan(summary.mean_ns)
    assert math.isnan(summary.p50_ns)
    assert math.isnan(summary.p99_ns)
    assert summary.max_ns == 0


def test_empty_tag_filter_summary_does_not_crash():
    net = make_net()
    tracker = FctTracker(net.hosts)
    net.host(0).send(2, 10_000, tag=FlowTag(1, 0))
    net.run()
    assert tracker.summary(tag_filter=FlowTag(99, 0)).count == 0


def test_starts_keyed_by_sender_and_msg_id():
    """Two hosts sending concurrently never collide in the start table,
    even if their transports issued overlapping message ids."""
    net = make_net()
    tracker = FctTracker(net.hosts)
    net.host(0).send(2, 10_000)
    net.host(1).send(3, 20_000)
    net.run()
    assert len(tracker.records) == 2
    by_src = {r.src_host: r for r in tracker.records}
    assert by_src[0].size_bytes == 10_000
    assert by_src[1].size_bytes == 20_000


def test_tag_filter():
    net = make_net()
    tracker = FctTracker(net.hosts)
    net.host(0).send(2, 10_000, tag=FlowTag(1, 0))
    net.host(0).send(3, 10_000, tag=FlowTag(2, 0))
    net.run()
    assert tracker.summary(tag_filter=FlowTag(1, 0)).count == 1


def test_fault_inflates_fct():
    """The §1 claim, quantified: a silent fault stretches the FCT of the
    flows crossing it via retransmission timeouts."""
    def p99(fault_rate):
        net = make_net()
        if fault_rate:
            net.inject_fault(down_link(0, 2), DropFault(fault_rate))
            net.inject_fault(down_link(1, 2), DropFault(fault_rate))
        tracker = FctTracker(net.hosts)
        for _ in range(10):
            net.host(0).send(2, 20_000)
        net.run()
        return tracker.summary().p99_ns

    assert p99(0.3) > 2 * p99(0.0)


def test_works_under_collective_runner():
    net = make_net()
    tracker = FctTracker(net.hosts)
    ring = locality_optimized_ring(net.spec.n_hosts)
    stages = ring_reduce_scatter_stages(ring, 200_000)
    StagedCollectiveRunner(net, 1, stages, iterations=2).run()
    # 3 stages x 4 hosts x 2 iterations messages tracked.
    assert len(tracker.records) == 3 * 4 * 2


def test_flows_through_pair():
    net = make_net()
    tracker = FctTracker(net.hosts)
    net.host(0).send(2, 1_000)
    net.host(0).send(2, 2_000)
    net.host(1).send(2, 3_000)
    net.run()
    pair = tracker.flows_through(0, 2)
    assert len(pair) == 2
    assert {r.size_bytes for r in pair} == {1_000, 2_000}
