"""Tests for packet and flow-tag types."""

from __future__ import annotations

from repro.simnet import ACK_SIZE, FlowTag, Packet, PacketKind, Priority


def test_flow_tag_next_iteration():
    tag = FlowTag(job_id=3, iteration=7)
    nxt = tag.next_iteration()
    assert nxt.job_id == 3
    assert nxt.iteration == 8
    assert nxt.collective == tag.collective


def test_flow_tag_ordering_by_iteration():
    assert FlowTag(1, 2) < FlowTag(1, 3)


def test_flow_tag_hashable_and_frozen():
    tags = {FlowTag(1, 0), FlowTag(1, 0), FlowTag(1, 1)}
    assert len(tags) == 2


def test_packet_ids_unique():
    a = Packet(src_host=0, dst_host=1, size=100)
    b = Packet(src_host=0, dst_host=1, size=100)
    assert a.pid != b.pid


def test_packet_defaults():
    p = Packet(src_host=0, dst_host=1, size=100)
    assert p.kind is PacketKind.DATA
    assert p.is_data
    assert p.priority is Priority.NORMAL
    assert p.retransmission == 0
    assert p.path == []


def test_packet_hop_records_path():
    p = Packet(src_host=0, dst_host=1, size=100)
    p.hop("up:L0->S1")
    p.hop("down:S1->L1")
    assert p.path == ["up:L0->S1", "down:S1->L1"]


def test_make_ack_reverses_direction():
    tag = FlowTag(9, 4)
    p = Packet(src_host=2, dst_host=5, size=4096, tag=tag, msg_id=11, seq=3)
    ack = p.make_ack()
    assert ack.src_host == 5
    assert ack.dst_host == 2
    assert ack.kind is PacketKind.ACK
    assert not ack.is_data
    assert ack.size == ACK_SIZE
    assert ack.msg_id == 11
    assert ack.seq == 3
    assert ack.tag == tag
    assert ack.priority is Priority.CONTROL


def test_flow_key_distinguishes_messages():
    a = Packet(src_host=0, dst_host=1, size=10, msg_id=1)
    b = Packet(src_host=0, dst_host=1, size=10, msg_id=2)
    assert a.flow_key() != b.flow_key()


def test_flow_key_same_for_same_message():
    a = Packet(src_host=0, dst_host=1, size=10, msg_id=1, seq=0)
    b = Packet(src_host=0, dst_host=1, size=10, msg_id=1, seq=5)
    assert a.flow_key() == b.flow_key()


def test_priority_ordering():
    assert Priority.BACKGROUND < Priority.NORMAL < Priority.MEASURED < Priority.CONTROL
