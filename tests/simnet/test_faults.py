"""Tests for fault models and the injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simnet import (
    BlackHoleFault,
    DisconnectFault,
    DropFault,
    FaultInjector,
    FaultInjectorError,
    FlowSubsetFault,
    IngressConditionedFault,
    IntermittentDropFault,
    LoadDependentFault,
    Packet,
    TransientDropFault,
)


def _pkt(dst=1):
    return Packet(src_host=0, dst_host=dst, size=100)


@pytest.fixture
def frng():
    return np.random.Generator(np.random.PCG64(7))


def test_drop_fault_rate_zero_never_drops(frng):
    fault = DropFault(0.0)
    assert not any(fault.drops(_pkt(), 0, frng) for _ in range(100))


def test_drop_fault_rate_one_always_drops(frng):
    fault = DropFault(1.0)
    assert all(fault.drops(_pkt(), 0, frng) for _ in range(100))


def test_drop_fault_statistics(frng):
    fault = DropFault(0.25)
    drops = sum(fault.drops(_pkt(), 0, frng) for _ in range(10_000))
    assert 2200 < drops < 2800


def test_drop_fault_invalid_rate():
    with pytest.raises(ValueError):
        DropFault(1.5)
    with pytest.raises(ValueError):
        DropFault(-0.1)


def test_drop_fault_is_silent_by_default():
    assert not DropFault(0.5).known


def test_disconnect_fault_drops_everything(frng):
    fault = DisconnectFault()
    assert fault.known
    assert fault.drops(_pkt(), 0, frng)


def test_silent_disconnect(frng):
    fault = DisconnectFault(known=False)
    assert not fault.known
    assert fault.drops(_pkt(), 0, frng)


def test_black_hole_matches_destination(frng):
    fault = BlackHoleFault(dst_hosts=frozenset({3, 4}))
    assert fault.drops(_pkt(dst=3), 0, frng)
    assert fault.drops(_pkt(dst=4), 0, frng)
    assert not fault.drops(_pkt(dst=5), 0, frng)


def test_transient_fault_window(frng):
    fault = TransientDropFault(rate=1.0, start_ns=100, end_ns=200)
    assert not fault.drops(_pkt(), 50, frng)
    assert fault.drops(_pkt(), 150, frng)
    assert not fault.drops(_pkt(), 200, frng)  # end is exclusive
    assert not fault.drops(_pkt(), 500, frng)


def test_transient_fault_active_at():
    fault = TransientDropFault(rate=0.5, start_ns=10, end_ns=20)
    assert not fault.active_at(9)
    assert fault.active_at(10)
    assert not fault.active_at(20)


def test_transient_fault_invalid_window():
    with pytest.raises(ValueError):
        TransientDropFault(rate=0.5, start_ns=100, end_ns=50)


def test_intermittent_fault_duty_cycle(frng):
    fault = IntermittentDropFault(rate=1.0, period_ns=100, duty=0.5)
    assert fault.active_at(0)
    assert fault.active_at(49)
    assert not fault.active_at(50)
    assert not fault.active_at(99)
    assert fault.active_at(100)  # next period


def test_intermittent_fault_validation():
    with pytest.raises(ValueError):
        IntermittentDropFault(rate=0.5, period_ns=0)
    with pytest.raises(ValueError):
        IntermittentDropFault(rate=0.5, period_ns=10, duty=1.5)


def test_injector_inject_and_lookup():
    injector = FaultInjector()
    fault = DropFault(0.1)
    injector.inject("up:L0->S1", fault)
    assert injector.fault_on("up:L0->S1") is fault
    assert injector.fault_on("up:L0->S2") is None


def test_injector_rejects_double_injection():
    injector = FaultInjector()
    injector.inject("up:L0->S1", DropFault(0.1))
    with pytest.raises(ValueError):
        injector.inject("up:L0->S1", DropFault(0.2))


def test_injector_clear_heals_and_returns_fault():
    injector = FaultInjector()
    fault = DropFault(0.1)
    injector.inject("up:L0->S1", fault)
    assert injector.clear("up:L0->S1") is fault
    assert injector.fault_on("up:L0->S1") is None


def test_injector_clear_unknown_link_is_an_error():
    injector = FaultInjector()
    with pytest.raises(FaultInjectorError):
        injector.clear("up:L0->S1")
    # Clearing twice is equally loud: the second clear sees no fault.
    injector.inject("up:L0->S1", DropFault(0.1))
    injector.clear("up:L0->S1")
    with pytest.raises(FaultInjectorError):
        injector.clear("up:L0->S1")


def test_injector_replace_escalates_in_place():
    injector = FaultInjector()
    gray = DropFault(0.05)
    injector.inject("up:L0->S1", gray)
    worse = DropFault(0.5)
    displaced = injector.inject("up:L0->S1", worse, replace=True)
    assert displaced is gray
    assert injector.fault_on("up:L0->S1") is worse
    # Escalate to a full disconnect: the lifecycle's terminal state.
    dead = DisconnectFault(known=False)
    assert injector.inject("up:L0->S1", dead, replace=True) is worse
    assert injector.fault_on("up:L0->S1") is dead


def test_injector_replace_on_clean_link_behaves_like_inject():
    injector = FaultInjector()
    fault = DropFault(0.1)
    assert injector.inject("up:L0->S1", fault, replace=True) is None
    assert injector.fault_on("up:L0->S1") is fault


def test_known_disabled_lists_only_known_faults():
    injector = FaultInjector()
    injector.inject("up:L0->S1", DisconnectFault(known=True))
    injector.inject("down:S2->L3", DropFault(0.05))  # silent
    assert injector.known_disabled() == frozenset({"up:L0->S1"})


# ----------------------------------------------------------------------
# Conditional (gray) faults
# ----------------------------------------------------------------------
def _link(preload_bytes=0):
    """A live link whose egress queue optionally carries a backlog."""
    from repro import units
    from repro.simnet import Link, Node, Simulator

    class _Null(Node):
        def receive(self, packet, link):
            pass

    sim = Simulator()
    rng = np.random.Generator(np.random.PCG64(0))
    link = Link(sim, "down:S0->L1", _Null(), units.GBPS, 0, rng)
    if preload_bytes:
        # First packet starts transmitting; the second stays queued.
        link.enqueue(Packet(src_host=0, dst_host=1, size=1))
        link.enqueue(Packet(src_host=0, dst_host=1, size=preload_bytes))
    return link


def test_conditional_fault_refuses_unconditional_drops(frng):
    fault = IngressConditionedFault(rate=1.0, ingress_link="up:L0->S0")
    with pytest.raises(TypeError):
        fault.drops(_pkt(), 0, frng)


def test_conditional_fault_keeps_matched_and_dropped_books(frng):
    fault = IngressConditionedFault(rate=0.5, ingress_link="up:L0->S0")
    link = _link()
    exposed = _pkt()
    exposed.hop("up:L0->S0")
    for _ in range(200):
        fault.drops_on(link, exposed, 0, frng)
    assert fault.matched_packets == 200
    assert 0 < fault.dropped_packets < 200


def test_ingress_conditioned_fault_matches_only_its_ingress(frng):
    fault = IngressConditionedFault(rate=1.0, ingress_link="up:L0->S0")
    link = _link()
    through_sick_port = _pkt()
    through_sick_port.hop("up:L0->S0")
    around_it = _pkt()
    around_it.hop("up:L0->S1")
    assert fault.drops_on(link, through_sick_port, 0, frng)
    assert not fault.drops_on(link, around_it, 0, frng)
    assert fault.matched_packets == 1
    assert fault.dropped_packets == 1


def test_ingress_conditioned_fault_requires_link_name():
    with pytest.raises(ValueError):
        IngressConditionedFault(rate=1.0)


def test_load_dependent_fault_fires_only_under_backlog(frng):
    fault = LoadDependentFault(rate=1.0, min_queue_bytes=500)
    idle = _link()
    assert not fault.drops_on(idle, _pkt(), 0, frng)
    assert fault.matched_packets == 0
    loaded = _link(preload_bytes=2000)
    assert fault.drops_on(loaded, _pkt(), 0, frng)
    assert fault.matched_packets == 1


def test_load_dependent_fault_requires_positive_threshold():
    with pytest.raises(ValueError):
        LoadDependentFault(rate=1.0, min_queue_bytes=0)


def test_flow_subset_fault_is_consistent_per_flow(frng):
    fault = FlowSubsetFault(rate=1.0, modulus=2, residues=frozenset({0, 1}))
    link = _link()
    # Every residue selected -> every flow matches.
    for dst in range(10):
        assert fault.drops_on(link, _pkt(dst=dst), 0, frng)

    narrow = FlowSubsetFault(rate=1.0, modulus=4, residues=frozenset({0}))
    verdicts = {dst: narrow.matches(link, _pkt(dst=dst)) for dst in range(64)}
    assert any(verdicts.values()) and not all(verdicts.values())
    # Same flow key always lands on the same side of the hash.
    for dst, verdict in verdicts.items():
        assert narrow.matches(link, _pkt(dst=dst)) == verdict


def test_flow_subset_fault_validates_residues():
    with pytest.raises(ValueError):
        FlowSubsetFault(modulus=0)
    with pytest.raises(ValueError):
        FlowSubsetFault(residues=frozenset())
    with pytest.raises(ValueError):
        FlowSubsetFault(modulus=4, residues=frozenset({4}))


def test_conditional_fault_validates_rate():
    with pytest.raises(ValueError):
        IngressConditionedFault(rate=1.5, ingress_link="up:L0->S0")
