"""Tests for leaf/spine switch routing over the network builder."""

from __future__ import annotations

import pytest

from repro.simnet import DisconnectFault, FlowTag, Network, Tracer
from repro.topology import ClosSpec, down_link, up_link


def make_net(n_leaves=4, n_spines=2, hosts_per_leaf=1, **kwargs):
    spec = ClosSpec(n_leaves=n_leaves, n_spines=n_spines, hosts_per_leaf=hosts_per_leaf)
    return Network(spec, seed=11, **kwargs)


def test_local_delivery_stays_under_leaf():
    tracer = Tracer()
    net = make_net(n_leaves=2, hosts_per_leaf=2, tracer=tracer)
    done = []
    net.host(1).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(1, 1000)  # hosts 0 and 1 share leaf 0
    net.run()
    assert done == [1000]
    fabric_hops = [
        e for e in tracer.events if e.link.startswith(("up:", "down:")) and e.event == "rx"
    ]
    assert fabric_hops == []  # never crossed the spine layer


def test_remote_delivery_crosses_exactly_one_spine():
    tracer = Tracer()
    net = make_net(tracer=tracer)
    done = []
    net.host(3).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(3, 1000)
    net.run()
    assert done == [1000]
    data_rx = [
        e
        for e in tracer.events
        if e.kind == "data" and e.event == "rx" and e.link.startswith("up:")
    ]
    assert len(data_rx) == 1  # one packet, one spine crossing


def test_spraying_uses_all_valid_spines():
    tracer = Tracer()
    net = make_net(n_spines=2, mtu=1000, tracer=tracer)
    net.host(3).on_message(lambda *a: None)
    net.host(0).send(3, 100_000)
    net.run()
    spines_used = {
        e.link
        for e in tracer.events
        if e.kind == "data" and e.event == "rx" and e.link.startswith("up:")
    }
    assert spines_used == {up_link(0, 0), up_link(0, 1)}


def test_known_disabled_uplink_never_used():
    dead = up_link(0, 0)
    tracer = Tracer()
    net = make_net(known_disabled=frozenset({dead}), mtu=1000, tracer=tracer)
    net.host(3).on_message(lambda *a: None)
    net.host(0).send(3, 50_000)
    net.run()
    used = {e.link for e in tracer.events if e.event == "tx" and e.link == dead}
    assert used == set()


def test_known_disabled_downlink_excludes_spine_for_that_leaf_only():
    dead = down_link(0, 3)  # spine 0 cannot reach leaf 3
    tracer = Tracer()
    net = make_net(known_disabled=frozenset({dead}), mtu=1000, tracer=tracer)
    for h in (2, 3):
        net.host(h).on_message(lambda *a: None)
    net.host(0).send(3, 30_000)  # must avoid spine 0
    net.host(0).send(2, 30_000)  # may still use spine 0
    net.run()
    to_l3_via_s0 = [
        e for e in tracer.events if e.event == "tx" and e.link == dead
    ]
    assert to_l3_via_s0 == []
    to_l2_via_s0 = [
        e
        for e in tracer.events
        if e.event == "tx" and e.link == down_link(0, 2) and e.kind == "data"
    ]
    assert to_l2_via_s0  # spine 0 still serves leaf 2


def test_leaf_ingress_counters_attribute_spine_and_sender():
    net = make_net()
    collectors = net.install_collectors(job_id=1)
    net.host(3).on_message(lambda *a: None)
    net.host(0).send(3, 10_000, tag=FlowTag(1, 0))
    net.run()
    record = collectors[3].finalize(net.now)
    assert record.total_bytes == 10_000
    assert all(src == 0 for (_spine, src) in record.sender_bytes)


def test_collector_only_on_its_leaf():
    net = make_net()
    collectors = net.install_collectors(job_id=1)
    net.host(3).on_message(lambda *a: None)
    net.host(0).send(3, 10_000, tag=FlowTag(1, 0))
    net.run()
    net.finalize_collectors()
    assert collectors[3].records and collectors[3].records[0].total_bytes == 10_000
    for leaf in (0, 1, 2):
        assert collectors[leaf].records == []


def test_rx_counters_on_spine_track_source_leaf():
    net = make_net()
    net.host(3).on_message(lambda *a: None)
    net.host(0).send(3, 10_000)
    net.run()
    total_spine_rx = sum(
        sum(s.counters.rx_bytes.values()) for s in net.spines
    )
    assert total_spine_rx >= 10_000  # data (plus maybe ACKs of data)


def test_misroute_counter_when_stray_packet_hits_disabled_downlink():
    # Force the condition by disabling the link *after* routing decided:
    # inject a disconnect without telling the control plane, then mark it
    # known on the spine's control only.
    net = make_net(mtu=1000)
    net.host(3).on_message(lambda *a: None)
    net.host(0).send(3, 5_000)
    # Disable on the shared control plane mid-flight is racy by design;
    # here we disable before running so every sprayed packet to S0 is
    # counted as misrouted at the spine.
    net.control.disable(down_link(0, 3))
    net.run()
    # Leaf avoided S0 entirely (control plane is shared), so no misroutes.
    assert net.spine(0).misrouted_packets == 0


def test_unknown_link_fault_injection_rejected():
    net = make_net()
    with pytest.raises(KeyError):
        net.inject_fault("up:L99->S0", DisconnectFault())
