"""Tests for the network builder."""

from __future__ import annotations

import pytest

from repro.simnet import DisconnectFault, DropFault, Network
from repro.topology import ClosSpec, down_link, host_up_link, up_link


def test_builds_all_nodes_and_links():
    spec = ClosSpec(n_leaves=4, n_spines=2, hosts_per_leaf=2)
    net = Network(spec, seed=0)
    assert len(net.leaves) == 4
    assert len(net.spines) == 2
    assert len(net.hosts) == 8
    # 2 directions x leaves x spines fabric links + 2 per host.
    assert len(net.links) == 2 * 4 * 2 + 2 * 8


def test_link_lookup_by_canonical_name():
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0)
    assert net.link(up_link(0, 1)).name == "up:L0->S1"
    assert net.link(down_link(1, 0)).name == "down:S1->L0"
    assert net.link(host_up_link(1)).name == "hostup:H1"


def test_known_disabled_links_carry_disconnect_faults():
    dead = up_link(0, 0)
    net = Network(
        ClosSpec(n_leaves=2, n_spines=2), seed=0, known_disabled=frozenset({dead})
    )
    fault = net.injector.fault_on(dead)
    assert isinstance(fault, DisconnectFault)
    assert fault.known
    assert dead in net.control.known_disabled


def test_inject_silent_fault_does_not_touch_control_plane():
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0)
    net.inject_fault(down_link(0, 1), DropFault(0.1))
    assert down_link(0, 1) not in net.control.known_disabled


def test_inject_known_fault_updates_control_plane():
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0)
    net.inject_fault(down_link(0, 1), DisconnectFault(known=True))
    assert down_link(0, 1) in net.control.known_disabled


def test_heal_fault_restores_routing():
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0)
    net.inject_fault(down_link(0, 1), DisconnectFault(known=True))
    net.heal_fault(down_link(0, 1))
    assert down_link(0, 1) not in net.control.known_disabled
    assert net.injector.fault_on(down_link(0, 1)) is None


def test_same_seed_same_behaviour():
    outcomes = []
    for _ in range(2):
        net = Network(ClosSpec(n_leaves=4, n_spines=2), seed=123, mtu=1000)
        net.inject_fault(down_link(0, 3), DropFault(0.3))
        collectors = net.install_collectors(job_id=1)
        net.host(3).on_message(lambda *a: None)
        from repro.simnet import FlowTag

        net.host(0).send(3, 50_000, tag=FlowTag(1, 0))
        net.run()
        record = collectors[3].finalize(net.now)
        outcomes.append((net.now, record.port_bytes, net.total_fault_drops()))
    assert outcomes[0] == outcomes[1]


def test_different_seeds_differ():
    results = []
    for seed in (1, 2):
        net = Network(ClosSpec(n_leaves=4, n_spines=2), seed=seed, mtu=1000)
        collectors = net.install_collectors(job_id=1)
        net.host(3).on_message(lambda *a: None)
        from repro.simnet import FlowTag

        net.host(0).send(3, 50_000, tag=FlowTag(1, 0))
        net.run()
        record = collectors[3].finalize(net.now)
        results.append(tuple(sorted(record.port_bytes.items())))
    assert results[0] != results[1]


def test_pfc_requires_finite_queues():
    with pytest.raises(ValueError):
        Network(ClosSpec(n_leaves=2, n_spines=2), seed=0, enable_pfc=True)


def test_pfc_controllers_wired_per_fabric_link():
    spec = ClosSpec(n_leaves=2, n_spines=2)
    net = Network(spec, seed=0, queue_capacity=1 << 20, enable_pfc=True)
    assert len(net.pfc_controllers) == 2 * spec.n_leaves * spec.n_spines


def test_double_injection_rejected():
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0)
    net.inject_fault(down_link(0, 1), DropFault(0.1))
    with pytest.raises(ValueError):
        net.inject_fault(down_link(0, 1), DropFault(0.2))


def test_replace_known_fault_with_silent_reenables_routing():
    # The nastiest gray-failure shape: a cleanly failed (known, routed
    # around) cable comes back half-alive. Routing must re-admit it.
    net = Network(ClosSpec(n_leaves=2, n_spines=2), seed=0)
    link = up_link(0, 1)
    net.inject_fault(link, DisconnectFault(known=True))
    assert link in net.control.known_disabled
    net.inject_fault(link, DropFault(0.3), replace=True)
    assert link not in net.control.known_disabled
    assert isinstance(net.injector.fault_on(link), DropFault)


def test_mid_run_inject_then_heal_round_trip():
    from repro.simnet import FlowTag

    net = Network(
        ClosSpec(n_leaves=2, n_spines=2), seed=0, mtu=1000, spray="round_robin"
    )
    link = up_link(0, 0)
    done = []
    net.host(1).on_message(lambda *a: done.append(a))
    net.host(0).send(1, 200_000, tag=FlowTag(1, 0))
    # Fault appears while packets are in flight, heals later.
    net.sim.schedule_at(1_000, net.inject_fault, link, DropFault(1.0))
    net.sim.schedule_at(500_000, net.heal_fault, link)
    net.run()
    assert done, "message must complete despite the mid-run fault window"
    assert net.link(link).faulted_packets > 0
    assert net.injector.fault_on(link) is None
    assert net.host(0).transport.failed_messages == 0


def test_spraying_excludes_known_fault_until_heal():
    from repro.simnet import FlowTag

    net = Network(
        ClosSpec(n_leaves=2, n_spines=2), seed=0, mtu=1000, spray="round_robin"
    )
    link = up_link(0, 0)
    net.host(1).on_message(lambda *a: None)
    net.inject_fault(link, DisconnectFault(known=True))
    net.host(0).send(1, 50_000, tag=FlowTag(1, 0))
    net.run()
    # Known-disabled: the spray policy never offers this uplink.
    assert net.link(link).tx_packets == 0
    assert net.link(up_link(0, 1)).tx_packets > 0

    net.heal_fault(link)
    net.host(0).send(1, 50_000, tag=FlowTag(1, 1))
    net.run()
    assert net.link(link).tx_packets > 0
