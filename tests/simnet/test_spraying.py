"""Tests for spray policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.simnet import (
    EcmpHash,
    LeastQueueSpray,
    Link,
    Node,
    Packet,
    PowerOfTwoSpray,
    RandomSpray,
    RoundRobinSpray,
    Simulator,
    make_policy,
)


class _Null(Node):
    def receive(self, packet, link):
        pass


def make_links(n, sizes=None):
    """Links with optional pre-loaded queue backlogs."""
    sim = Simulator()
    rng = np.random.Generator(np.random.PCG64(0))
    links = [
        Link(sim, f"l{i}", _Null(), units.GBPS, 0, rng) for i in range(n)
    ]
    if sizes:
        for link, size in zip(links, sizes):
            if size:
                # Two packets: the first starts transmitting (leaves the
                # queue), the second stays queued as backlog.
                link.enqueue(Packet(src_host=0, dst_host=1, size=1))
                link.enqueue(Packet(src_host=0, dst_host=1, size=size))
    return links


def _pkt(src=0, dst=1, msg=1):
    return Packet(src_host=src, dst_host=dst, size=100, msg_id=msg)


@pytest.fixture
def srng():
    return np.random.Generator(np.random.PCG64(42))


def test_random_spray_covers_all_candidates(srng):
    links = make_links(4)
    policy = RandomSpray()
    chosen = {policy.choose(links, _pkt(), srng).name for _ in range(200)}
    assert chosen == {"l0", "l1", "l2", "l3"}


def test_random_spray_roughly_uniform(srng):
    links = make_links(4)
    policy = RandomSpray()
    counts = {link.name: 0 for link in links}
    for _ in range(4000):
        counts[policy.choose(links, _pkt(), srng).name] += 1
    for count in counts.values():
        assert 800 < count < 1200


def test_least_queue_picks_emptiest(srng):
    links = make_links(3, sizes=[500, 0, 900])
    policy = LeastQueueSpray()
    assert policy.choose(links, _pkt(), srng).name == "l1"


def test_least_queue_breaks_ties_randomly(srng):
    links = make_links(3, sizes=[900, 0, 0])
    policy = LeastQueueSpray()
    chosen = {policy.choose(links, _pkt(), srng).name for _ in range(100)}
    assert chosen == {"l1", "l2"}


def test_po2_prefers_less_loaded(srng):
    links = make_links(2, sizes=[900, 0])
    policy = PowerOfTwoSpray()
    counts = {0: 0, 1: 0}
    for _ in range(100):
        name = policy.choose(links, _pkt(), srng).name
        counts[int(name[1])] += 1
    assert counts[1] == 100


def test_po2_single_candidate(srng):
    links = make_links(1)
    assert PowerOfTwoSpray().choose(links, _pkt(), srng) is links[0]


def test_ecmp_is_deterministic_per_flow(srng):
    links = make_links(8)
    policy = EcmpHash()
    packet = _pkt(msg=77)
    first = policy.choose(links, packet, srng)
    for _ in range(20):
        assert policy.choose(links, _pkt(msg=77), srng) is first


def test_ecmp_spreads_distinct_flows(srng):
    links = make_links(8)
    policy = EcmpHash()
    chosen = {
        policy.choose(links, _pkt(src=s, msg=s), srng).name for s in range(64)
    }
    assert len(chosen) > 3  # many flows land on many uplinks


def test_round_robin_cycles(srng):
    links = make_links(3)
    policy = RoundRobinSpray()
    names = [policy.choose(links, _pkt(), srng).name for _ in range(6)]
    assert names == ["l0", "l1", "l2", "l0", "l1", "l2"]


def test_round_robin_perfectly_even(srng):
    links = make_links(4)
    policy = RoundRobinSpray()
    counts = {link.name: 0 for link in links}
    for _ in range(400):
        counts[policy.choose(links, _pkt(), srng).name] += 1
    assert set(counts.values()) == {100}


def test_flowlet_sticks_within_gap(srng):
    from repro.simnet import FlowletSpray

    links = make_links(4)
    policy = FlowletSpray(gap_ns=1000)
    first = policy.choose(links, _pkt(msg=5), srng)
    # Back-to-back packets of the same flow stay on the same uplink.
    for _ in range(20):
        assert policy.choose(links, _pkt(msg=5), srng) is first


def test_flowlet_repicks_after_gap(srng):
    from repro.simnet import FlowletSpray

    links = make_links(8)
    policy = FlowletSpray(gap_ns=10)
    sim = links[0].sim
    chosen = set()
    for _ in range(64):
        chosen.add(policy.choose(links, _pkt(msg=6), srng).name)
        sim.schedule(100, lambda: None)
        sim.run()  # advance time past the flowlet gap
    assert len(chosen) > 2


def test_flowlet_different_flows_independent(srng):
    from repro.simnet import FlowletSpray

    links = make_links(8)
    policy = FlowletSpray(gap_ns=1_000_000)
    chosen = {
        policy.choose(links, _pkt(src=s, msg=s), srng).name for s in range(64)
    }
    assert len(chosen) > 2


def test_flowlet_invalid_gap():
    from repro.simnet import FlowletSpray

    with pytest.raises(ValueError):
        FlowletSpray(gap_ns=0)


def test_make_policy_by_name():
    from repro.simnet import FlowletSpray

    assert isinstance(make_policy("random"), RandomSpray)
    assert isinstance(make_policy("adaptive"), LeastQueueSpray)
    assert isinstance(make_policy("po2"), PowerOfTwoSpray)
    assert isinstance(make_policy("ecmp"), EcmpHash)
    assert isinstance(make_policy("round_robin"), RoundRobinSpray)
    assert isinstance(make_policy("flowlet"), FlowletSpray)


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown spray policy"):
        make_policy("bogus")


def test_ecmp_is_endpoint_stable_across_messages(srng):
    # Per routing epoch, a host pair pins to one uplink regardless of
    # which message a packet belongs to — real ECMP hashes headers, not
    # transport message ids.
    links = make_links(8)
    policy = EcmpHash()
    first = policy.choose(links, _pkt(src=3, dst=9, msg=1), srng)
    for msg in range(2, 30):
        assert policy.choose(links, _pkt(src=3, dst=9, msg=msg), srng) is first


def test_ecmp_salt_rerolls_the_hash(srng):
    links = make_links(8)
    mapping = {
        salt: {
            s: EcmpHash(salt=salt).choose(links, _pkt(src=s, dst=s + 1), srng).name
            for s in range(32)
        }
        for salt in (0, 1)
    }
    assert mapping[0] != mapping[1]  # a re-seeded switch repins flows


def test_ecmp_same_salt_is_deterministic(srng):
    links = make_links(8)
    a, b = EcmpHash(salt=5), EcmpHash(salt=5)
    for s in range(16):
        packet = _pkt(src=s, dst=s + 1)
        assert a.choose(links, packet, srng) is b.choose(links, packet, srng)


def test_policies_respect_shrunken_candidate_set(srng):
    # The control plane narrows the candidate list after a disable or a
    # spray exclusion; every policy must stay inside what it is given.
    links = make_links(4)
    survivors = links[1:3]
    for policy in (
        RoundRobinSpray(),
        RandomSpray(),
        LeastQueueSpray(),
        EcmpHash(),
    ):
        for i in range(40):
            chosen = policy.choose(survivors, _pkt(src=i, msg=i), srng)
            assert chosen in survivors
