"""Tests for FlowPulse collectors and port counters."""

from __future__ import annotations

from repro.simnet import CollectiveCollector, FlowTag, Packet, PacketKind, PortCounters


def _pkt(tag, size=1000, src=0, kind=PacketKind.DATA):
    return Packet(src_host=src, dst_host=9, size=size, tag=tag, kind=kind)


def test_collector_accumulates_port_bytes():
    c = CollectiveCollector(leaf=1, job_id=5)
    tag = FlowTag(5, 0)
    c.observe(_pkt(tag, size=100), spine=0, src_leaf=2, now=10)
    c.observe(_pkt(tag, size=200), spine=0, src_leaf=2, now=11)
    c.observe(_pkt(tag, size=300), spine=1, src_leaf=3, now=12)
    record = c.finalize(now=20)
    assert record.port_bytes == {0: 300, 1: 300}
    assert record.sender_bytes == {(0, 2): 300, (1, 3): 300}
    assert record.total_bytes == 600


def test_collector_window_closes_on_next_iteration():
    records = []
    c = CollectiveCollector(leaf=0, job_id=5, on_record=records.append)
    c.observe(_pkt(FlowTag(5, 0)), spine=0, src_leaf=1, now=1)
    c.observe(_pkt(FlowTag(5, 1)), spine=0, src_leaf=1, now=2)
    assert len(records) == 1
    assert records[0].tag.iteration == 0
    assert c.current_iteration == 1


def test_collector_ignores_other_jobs():
    c = CollectiveCollector(leaf=0, job_id=5)
    c.observe(_pkt(FlowTag(6, 0)), spine=0, src_leaf=1, now=1)
    assert c.finalize(2) is None


def test_collector_ignores_acks():
    c = CollectiveCollector(leaf=0, job_id=5)
    c.observe(_pkt(FlowTag(5, 0), kind=PacketKind.ACK), spine=0, src_leaf=1, now=1)
    assert c.finalize(2) is None


def test_collector_ignores_untagged_packets():
    c = CollectiveCollector(leaf=0, job_id=5)
    c.observe(_pkt(None), spine=0, src_leaf=1, now=1)
    assert c.finalize(2) is None


def test_collector_straggler_packet_counted_in_current_window():
    # A late packet of iteration 0 arriving after iteration 1 started is
    # miscounted into the open window (as real hardware would).
    c = CollectiveCollector(leaf=0, job_id=5)
    c.observe(_pkt(FlowTag(5, 0), size=10), spine=0, src_leaf=1, now=1)
    c.observe(_pkt(FlowTag(5, 1), size=20), spine=0, src_leaf=1, now=2)
    c.observe(_pkt(FlowTag(5, 0), size=30), spine=0, src_leaf=1, now=3)  # straggler
    record = c.finalize(4)
    assert record.tag.iteration == 1
    assert record.port_bytes == {0: 50}


def test_collector_skipped_iteration_closes_window():
    records = []
    c = CollectiveCollector(leaf=0, job_id=5, on_record=records.append)
    c.observe(_pkt(FlowTag(5, 0)), spine=0, src_leaf=1, now=1)
    c.observe(_pkt(FlowTag(5, 4)), spine=0, src_leaf=1, now=2)
    assert records[0].tag.iteration == 0
    assert c.current_iteration == 4


def test_collector_finalize_empty_returns_none():
    assert CollectiveCollector(leaf=0, job_id=1).finalize(0) is None


def test_collector_window_times():
    c = CollectiveCollector(leaf=0, job_id=5)
    c.observe(_pkt(FlowTag(5, 0)), spine=0, src_leaf=1, now=100)
    record = c.finalize(500)
    assert record.start_ns == 100
    assert record.end_ns == 500


def test_record_volume_vector_dense():
    c = CollectiveCollector(leaf=0, job_id=5)
    c.observe(_pkt(FlowTag(5, 0), size=10), spine=2, src_leaf=1, now=1)
    record = c.finalize(2)
    assert record.volume_vector(4) == [0, 0, 10, 0]


def test_records_list_preserved_across_windows():
    c = CollectiveCollector(leaf=0, job_id=5)
    for iteration in range(3):
        c.observe(_pkt(FlowTag(5, iteration)), spine=0, src_leaf=1, now=iteration)
    c.finalize(10)
    assert [r.tag.iteration for r in c.records] == [0, 1, 2]


def test_port_counters():
    counters = PortCounters()
    counters.count_rx(0, 100)
    counters.count_rx(0, 50)
    counters.count_tx(1, 70)
    assert counters.rx_bytes[0] == 150
    assert counters.rx_packets[0] == 2
    assert counters.tx_bytes[1] == 70
    assert counters.totals() == (150, 70)
