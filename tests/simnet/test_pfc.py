"""Tests for priority flow control."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.simnet import (
    Link,
    Node,
    Packet,
    PfcConfig,
    PfcController,
    Priority,
    Simulator,
)


class _Null(Node):
    def receive(self, packet, link):
        pass


def _setup(xoff=1000, xon=500):
    sim = Simulator()
    rng = np.random.Generator(np.random.PCG64(0))
    # Slow watched link so its queue can actually fill.
    watched = Link(sim, "watched", _Null(), 8, 0, rng)  # 8 bps: glacial
    feeder = Link(sim, "feeder", _Null(), units.GBPS, 0, rng)
    controller = PfcController(
        watched, [feeder], PfcConfig(xoff_bytes=xoff, xon_bytes=xon)
    )
    return sim, watched, feeder, controller


def _pkt(size, priority=Priority.NORMAL):
    return Packet(src_host=0, dst_host=1, size=size, priority=priority)


def test_pause_asserted_at_xoff():
    sim, watched, feeder, controller = _setup(xoff=1000, xon=500)
    watched.enqueue(_pkt(10))  # starts transmitting (slowly)
    watched.enqueue(_pkt(600))
    assert not controller.paused
    watched.enqueue(_pkt(600))  # backlog 1200 >= xoff
    assert controller.paused
    assert Priority.NORMAL in feeder.paused_priorities


def test_control_priority_never_paused():
    sim, watched, feeder, controller = _setup()
    watched.enqueue(_pkt(10))
    watched.enqueue(_pkt(2000))
    assert controller.paused
    assert Priority.CONTROL not in feeder.paused_priorities


def test_resume_at_xon():
    sim, watched, feeder, controller = _setup(xoff=1000, xon=500)
    watched.enqueue(_pkt(10))
    watched.enqueue(_pkt(1200))
    assert controller.paused
    # Drain: let the slow link transmit the queued packet.
    sim.run()
    assert not controller.paused
    assert feeder.paused_priorities == frozenset()


def test_pause_resume_counters():
    sim, watched, feeder, controller = _setup()
    watched.enqueue(_pkt(10))
    watched.enqueue(_pkt(2000))
    sim.run()
    assert controller.pauses_sent == 1
    assert controller.resumes_sent == 1


def test_hysteresis_no_flapping_between_watermarks():
    sim, watched, feeder, controller = _setup(xoff=1000, xon=200)
    watched.enqueue(_pkt(10))
    watched.enqueue(_pkt(600))  # 600: below xoff, no pause
    assert not controller.paused
    watched.enqueue(_pkt(600))  # 1200: pause
    assert controller.paused
    # Draining to 600 (between xon and xoff) keeps the pause asserted.
    controller._on_backlog_change(600)
    assert controller.paused


def test_invalid_watermarks_rejected():
    with pytest.raises(ValueError):
        PfcConfig(xoff_bytes=100, xon_bytes=100)
    with pytest.raises(ValueError):
        PfcConfig(xoff_bytes=100, xon_bytes=-5)


def test_lossless_with_finite_buffers_and_pfc():
    """With PFC, a finite-buffer hotspot loses nothing."""
    sim = Simulator()
    rng = np.random.Generator(np.random.PCG64(0))
    sink = _Null()
    slow = Link(sim, "slow", sink, units.MBPS, 0, rng, queue_capacity=20_000)
    feeder = Link(sim, "feeder", _FeederTarget(slow), units.GBPS, 0, rng)
    PfcController(slow, [feeder], PfcConfig(xoff_bytes=10_000, xon_bytes=5_000))
    for _ in range(100):
        feeder.enqueue(_pkt(1000))
    sim.run()
    assert slow.overflow_packets == 0
    assert slow.delivered_packets == 100


class _FeederTarget(Node):
    """Forwards deliveries into another link (a one-port switch)."""

    def __init__(self, out: Link):
        self.out = out

    def receive(self, packet, link):
        self.out.enqueue(packet)
