"""Tests for unit conversions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_transmission_time_simple():
    # 1000 bytes at 8 Gbps = 8000 bits / 8e9 bps = 1 microsecond.
    assert units.transmission_time_ns(1000, 8 * units.GBPS) == 1000


def test_transmission_time_rounds_up():
    # 1 byte at 3 bps: 8/3 s -> ceil to nanoseconds.
    assert units.transmission_time_ns(1, 3) == -(-8 * units.SECOND // 3)


def test_transmission_time_zero_bytes():
    assert units.transmission_time_ns(0, units.GBPS) == 0


def test_transmission_time_negative_size_rejected():
    with pytest.raises(ValueError):
        units.transmission_time_ns(-1, units.GBPS)


def test_transmission_time_zero_rate_rejected():
    with pytest.raises(ValueError):
        units.transmission_time_ns(100, 0)


def test_bytes_per_second():
    assert units.bytes_per_second(units.GBPS) == 125e6


def test_time_constants_consistent():
    assert units.SECOND == 1000 * units.MILLISECOND
    assert units.MILLISECOND == 1000 * units.MICROSECOND
    assert units.MICROSECOND == 1000 * units.NANOSECOND


def test_size_constants_consistent():
    assert units.GIB == 1024 * units.MIB == 1024 * 1024 * units.KIB
    assert units.GB == 1000 * units.MB == 1_000_000 * units.KB


def test_format_bytes():
    assert units.format_bytes(512) == "512 B"
    assert units.format_bytes(2048) == "2.0 KiB"
    assert units.format_bytes(3 * units.MIB) == "3.0 MiB"
    assert units.format_bytes(5 * units.GIB) == "5.0 GiB"


def test_format_time():
    assert units.format_time(500) == "500 ns"
    assert units.format_time(1500) == "1.50 us"
    assert units.format_time(2_500_000) == "2.50 ms"
    assert units.format_time(3 * units.SECOND) == "3.000 s"


def test_ns_conversions():
    assert units.ns_to_us(2500) == 2.5
    assert units.ns_to_ms(2_500_000) == 2.5


@given(st.integers(0, 10**12), st.integers(1, 10**12))
def test_property_transmission_time_never_undershoots(size, rate):
    t = units.transmission_time_ns(size, rate)
    # t nanoseconds at `rate` bps must cover size*8 bits.
    assert t * rate >= size * 8 * units.SECOND
    # And t-1 must not (tight ceiling), unless t is 0.
    if t > 0:
        assert (t - 1) * rate < size * 8 * units.SECOND
