"""Tests for two-tier monitoring on three-level fabrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import DetectionConfig
from repro.threelevel import (
    ThreeLevelModel,
    ThreeLevelMonitor,
    ThreeLevelSpec,
    core_down_link,
    core_up_link,
    pod_down_link,
    pod_up_link,
    predict_three_level,
    run_iterations3,
)
from repro.units import GIB

SPEC = ThreeLevelSpec(
    n_pods=4, leaves_per_pod=4, spines_per_pod=2, cores_per_spine=2, hosts_per_leaf=1
)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 4 * GIB)


def monitored_run(silent=None, n=3, seed=0, threshold=0.01, disabled=frozenset()):
    model = ThreeLevelModel(
        SPEC, known_disabled=disabled, silent=silent or {}, mtu=1024
    )
    runs = run_iterations3(model, DEMAND, n, seed=seed)
    monitor = ThreeLevelMonitor(
        model, DEMAND, DetectionConfig(threshold=threshold)
    )
    return monitor.process_run(runs)


def test_prediction_conserves_demand():
    model = ThreeLevelModel(SPEC, mtu=1024)
    leaf_pred, spine_preds = predict_three_level(model, DEMAND)
    from repro.threelevel import demand_by_leaf_pair

    pairs = demand_by_leaf_pair(SPEC, DEMAND)
    total = sum(pairs.values())
    assert np.isclose(leaf_pred.total_bytes, total)
    inter = sum(v for ((sp, _), (dp, _)), v in pairs.items() if sp != dp)
    assert np.isclose(sum(p.total_bytes for p in spine_preds.values()), inter)


def test_healthy_run_quiet_at_both_tiers():
    verdicts = monitored_run(seed=1)
    assert not any(v.triggered for v in verdicts)


def test_pod_down_fault_detected_and_localized():
    fault = pod_down_link(1, 0, 2)
    verdicts = monitored_run(silent={fault: 0.05}, seed=2)
    assert all(v.triggered for v in verdicts)
    suspected = frozenset().union(*(v.suspected_links() for v in verdicts))
    assert fault in suspected
    # The core layer is quiet, so no core links are blamed.
    assert not any(link.startswith("cs") for link in suspected)


def test_pod_up_fault_detected():
    fault = pod_up_link(2, 1, 0)
    verdicts = monitored_run(silent={fault: 0.05}, seed=3)
    assert any(v.triggered for v in verdicts)
    suspected = frozenset().union(*(v.suspected_links() for v in verdicts))
    assert fault in suspected


def test_core_down_fault_localized_at_spine_tier():
    fault = core_down_link(1, 2, 0)  # core 1 -> pod 2 spine 0
    verdicts = monitored_run(silent={fault: 0.05}, seed=4)
    assert any(v.triggered for v in verdicts)
    suspected = frozenset().union(*(v.suspected_links() for v in verdicts))
    assert fault in suspected
    # The spine tier alarmed.
    assert any(
        r.triggered for v in verdicts for r in v.spine_results.values()
    )


def test_core_up_fault_localized_remote():
    fault = core_up_link(0, 0, 1)  # pod 0 spine 0 -> core 1
    verdicts = monitored_run(silent={fault: 0.05}, seed=5)
    suspected = frozenset().union(*(v.suspected_links() for v in verdicts))
    assert fault in suspected
    # Sender-pod comparison at the spine tier should mark it remote.
    remote = [
        s
        for v in verdicts
        for s in v.suspicions
        if s.kind == "remote" and s.link == fault
    ]
    assert remote


def test_core_fault_not_blamed_on_pod_links():
    """Cross-tier suppression: a core-layer fault must not generate
    spurious pod-level (up/down) suspicions at the leaves below."""
    fault = core_down_link(3, 1, 1)
    verdicts = monitored_run(silent={fault: 0.08}, seed=6)
    suspected = frozenset().union(*(v.suspected_links() for v in verdicts))
    assert fault in suspected
    pod_level = {l for l in suspected if l.startswith(("up:", "down:"))}
    assert not pod_level


def test_known_disabled_absorbed_by_model():
    disabled = frozenset({core_up_link(0, 1, 3), core_down_link(3, 0, 1)})
    verdicts = monitored_run(seed=7, disabled=disabled)
    assert not any(v.triggered for v in verdicts)


def test_detection_with_preexisting_core_fault_plus_new_pod_fault():
    disabled = frozenset({core_up_link(0, 1, 3), core_down_link(3, 0, 1)})
    fault = pod_down_link(2, 1, 1)
    verdicts = monitored_run(silent={fault: 0.05}, seed=8, disabled=disabled)
    assert any(v.triggered for v in verdicts)
    suspected = frozenset().union(*(v.suspected_links() for v in verdicts))
    assert fault in suspected
