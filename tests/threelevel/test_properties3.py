"""Property tests for the three-level simulator."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import locality_optimized_ring, ring_demand
from repro.threelevel import (
    ThreeLevelModel,
    ThreeLevelSpec,
    demand_by_leaf_pair,
    simulate_iteration3,
)


@settings(max_examples=20, deadline=None)
@given(
    n_pods=st.integers(2, 4),
    leaves_per_pod=st.integers(1, 3),
    spines_per_pod=st.integers(1, 3),
    cores_per_spine=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_property_three_level_conserves_volume(
    n_pods, leaves_per_pod, spines_per_pod, cores_per_spine, seed
):
    """Every leaf receives exactly its inbound demand; the spine tier
    carries exactly the inter-pod portion — for any fabric shape."""
    spec = ThreeLevelSpec(
        n_pods=n_pods,
        leaves_per_pod=leaves_per_pod,
        spines_per_pod=spines_per_pod,
        cores_per_spine=cores_per_spine,
        hosts_per_leaf=1,
    )
    if spec.n_hosts < 2:
        return
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), 1_000_000)
    rng = np.random.Generator(np.random.PCG64(seed))
    records = simulate_iteration3(ThreeLevelModel(spec, mtu=700), demand, rng)
    pairs = demand_by_leaf_pair(spec, demand)
    for record in records.leaves:
        pod, leaf = (
            record.leaf // spec.leaves_per_pod,
            record.leaf % spec.leaves_per_pod,
        )
        inbound = sum(v for (s, d), v in pairs.items() if d == (pod, leaf))
        assert record.total_bytes == inbound
    inter = sum(v for ((sp, _), (dp, _)), v in pairs.items() if sp != dp)
    assert sum(r.total_bytes for r in records.spines.values()) == inter


@settings(max_examples=15, deadline=None)
@given(
    drop_permille=st.integers(0, 500),
    seed=st.integers(0, 10_000),
)
def test_property_faults_never_lose_volume(drop_permille, seed):
    """Silent faults trigger retransmission, never loss: leaf totals are
    invariant to any drop rate."""
    spec = ThreeLevelSpec(
        n_pods=3, leaves_per_pod=2, spines_per_pod=2, cores_per_spine=2
    )
    demand = ring_demand(locality_optimized_ring(spec.n_hosts), 500_000)
    from repro.threelevel import core_down_link, pod_down_link

    silent = {
        core_down_link(0, 1, 0): drop_permille / 1000,
        pod_down_link(0, 1, 1): drop_permille / 1000,
    }
    rng = np.random.Generator(np.random.PCG64(seed))
    records = simulate_iteration3(
        ThreeLevelModel(spec, silent=silent, mtu=700), demand, rng
    )
    pairs = demand_by_leaf_pair(spec, demand)
    total_inbound = sum(pairs.values())
    assert sum(r.total_bytes for r in records.leaves) == total_inbound
