"""Closed-loop remediation on three-level fabrics."""

from __future__ import annotations

import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.core import (
    ConfirmationPolicy,
    DetectionConfig,
    RemediationEngine,
    RemediationError,
    cable_links3,
    cable_of3,
)
from repro.threelevel import (
    ThreeLevelModel,
    ThreeLevelMonitor,
    ThreeLevelSpec,
    core_down_link,
    core_up_link,
    pod_down_link,
    pod_up_link,
    run_iterations3,
)
from repro.units import GIB

SPEC = ThreeLevelSpec(
    n_pods=4, leaves_per_pod=4, spines_per_pod=2, cores_per_spine=2, hosts_per_leaf=1
)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 4 * GIB)


def test_cable_of3_pod_links():
    assert cable_of3(pod_up_link(1, 2, 0)) == ("pod", "L1.2", "S1.0")
    assert cable_of3(pod_down_link(1, 0, 2)) == ("pod", "L1.2", "S1.0")


def test_cable_of3_core_links():
    assert cable_of3(core_up_link(0, 1, 3)) == ("core", "S0.1", "C3")
    assert cable_of3(core_down_link(3, 0, 1)) == ("core", "S0.1", "C3")


def test_cable_links3_roundtrip():
    cable = cable_of3(core_up_link(2, 0, 1))
    links = cable_links3(cable)
    assert links == frozenset({core_up_link(2, 0, 1), core_down_link(1, 2, 0)})
    cable = cable_of3(pod_down_link(3, 1, 0))
    assert cable_links3(cable) == frozenset(
        {pod_up_link(3, 0, 1), pod_down_link(3, 1, 0)}
    )


def test_cable_of3_rejects_garbage():
    with pytest.raises((RemediationError, ValueError)):
        cable_of3("bogus")
    with pytest.raises(RemediationError):
        cable_links3(("warp", "a", "b"))


def _run_and_remediate(fault_link, rate=0.05, n=6):
    engine = RemediationEngine(
        policy=ConfirmationPolicy(confirm_after=2, window=4),
        cable_fn=cable_of3,
        links_fn=cable_links3,
    )
    known = ThreeLevelModel(SPEC, mtu=1024)
    actions = []
    quiet_after = []
    for iteration in range(n):
        active = (
            {fault_link: rate}
            if fault_link not in known.known_disabled
            else {}
        )
        truth = known.with_silent(active)
        records = run_iterations3(truth, DEMAND, 1, seed=100 + iteration)[0]
        monitor = ThreeLevelMonitor(known, DEMAND, DetectionConfig(threshold=0.01))
        verdict = monitor.process_iteration(records)
        action = engine.observe(verdict)
        if action is not None:
            from dataclasses import replace

            known = replace(
                known,
                known_disabled=known.known_disabled | action.disabled_links,
            )
            engine.reset_history()
            actions.append(action)
        elif actions:
            quiet_after.append(not verdict.triggered)
    return actions, quiet_after, known


def test_core_fault_drained_and_recovered():
    fault = core_down_link(1, 2, 0)
    actions, quiet_after, known = _run_and_remediate(fault)
    assert actions
    assert fault in actions[0].disabled_links
    assert quiet_after and all(quiet_after)


def test_pod_fault_drained_and_recovered():
    fault = pod_down_link(1, 0, 2)
    actions, quiet_after, known = _run_and_remediate(fault)
    assert actions
    assert fault in actions[0].disabled_links
    assert quiet_after and all(quiet_after)
