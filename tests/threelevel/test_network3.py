"""Tests for the packet-level three-level fabric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import (
    StagedCollectiveRunner,
    locality_optimized_ring,
    ring_reduce_scatter_stages,
)
from repro.simnet import DropFault, FlowTag, Tracer
from repro.threelevel import (
    ThreeLevelModel,
    ThreeLevelNetwork,
    ThreeLevelSpec,
    core_down_link,
    core_up_link,
    pod_down_link,
    pod_up_link,
    run_iterations3,
)
from repro.collectives import ring_demand

SPEC = ThreeLevelSpec(
    n_pods=2, leaves_per_pod=2, spines_per_pod=2, cores_per_spine=2, hosts_per_leaf=1
)


def make_net(**kwargs):
    return ThreeLevelNetwork(SPEC, seed=3, mtu=512, **kwargs)


def test_builds_all_components():
    net = make_net()
    assert len(net.leaves) == 4
    assert len(net.spines) == 4
    assert len(net.cores) == 4
    assert len(net.hosts) == 4
    # Pod links: 2 pods * 2 leaves * 2 spines * 2 dirs = 16; core links:
    # 2 pods * 2 spines * 2 cores * 2 dirs = 16; host links: 8.
    assert len(net.links) == 40


def test_intra_pod_delivery_never_touches_cores():
    net = make_net()
    done = []
    net.host(1).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(1, 50_000)  # hosts 0,1 = pod 0 leaves 0,1
    net.run()
    assert done == [50_000]
    assert all(core.counters.totals() == (0, 0) for core in net.cores)


def test_inter_pod_delivery_crosses_exactly_one_core():
    net = make_net()
    done = []
    net.host(2).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(2, 512)  # single packet, pod 0 -> pod 1
    net.run()
    assert done == [512]
    cores_touched = [c for c in net.cores if sum(c.counters.rx_bytes.values())]
    assert len(cores_touched) == 1


def test_core_routing_respects_spine_groups():
    """A packet that chose pod spine s must traverse a core of s's
    group and arrive at the destination pod's spine s."""
    tracer = Tracer()
    net = ThreeLevelNetwork(SPEC, seed=5, mtu=512)
    for link in net.links.values():
        link.tracer = tracer
    net.host(2).on_message(lambda *a: None)
    net.host(0).send(2, 20_000)
    net.run()
    for event in tracer.events:
        if event.event == "rx" and event.link.startswith("csup:"):
            # csup:S{pod}.{s}->C{c}: c must be in group(s).
            left, right = event.link.split("->")
            s = int(left.split(".")[-1])
            c = int(right[1:])
            assert c in SPEC.cores_of_spine(s)


def test_collectors_at_both_tiers():
    net = make_net()
    leaf_collectors, spine_collectors = net.install_collectors(job_id=1)
    net.host(2).on_message(lambda *a: None)
    net.host(0).send(2, 40_000, tag=FlowTag(1, 0))
    net.run()
    net.finalize_collectors()
    dst_global = SPEC.global_leaf(1, 0)
    assert leaf_collectors[dst_global].records[0].total_bytes == 40_000
    spine_total = sum(
        r.total_bytes
        for (pod, s), c in spine_collectors.items()
        if pod == 1
        for r in c.records
    )
    assert spine_total == 40_000


def test_known_disabled_core_link_avoided():
    dead = core_up_link(0, 0, 0)
    net = ThreeLevelNetwork(SPEC, seed=7, mtu=512, known_disabled=frozenset({dead}))
    net.host(2).on_message(lambda *a: None)
    net.host(0).send(2, 40_000)
    net.run()
    assert net.link(dead).tx_packets == 0
    assert net.total_fault_drops() == 0


def test_silent_core_fault_recovered_by_retransmission():
    fault = core_down_link(0, 1, 0)
    net = make_net()
    net.inject_fault(fault, DropFault(0.4))
    done = []
    net.host(2).on_message(lambda src, mid, tag, size: done.append(size))
    net.host(0).send(2, 60_000)
    net.run()
    assert done == [60_000]
    assert net.total_fault_drops() > 0


def test_ring_collective_runs_on_three_level_network():
    net = make_net()
    leaf_collectors, _ = net.install_collectors(job_id=1)
    ring = locality_optimized_ring(SPEC.n_hosts)
    stages = ring_reduce_scatter_stages(ring, 200_000)
    runner = StagedCollectiveRunner(net, 1, stages, iterations=2)
    times = runner.run()
    net.finalize_collectors()
    assert len(times) == 2
    expected = 200_000 - 200_000 // 4
    for g, collector in leaf_collectors.items():
        assert [r.total_bytes for r in collector.records] == [expected, expected]


def test_packet_sim_agrees_with_fastsim3():
    """Cross-validation: per-port mean volumes from the packet-level
    three-level fabric match the statistical model."""
    ring = locality_optimized_ring(SPEC.n_hosts)
    stages = ring_reduce_scatter_stages(ring, 400_000)
    demand = ring_demand(ring, 400_000)
    iterations = 4

    net = ThreeLevelNetwork(SPEC, seed=11, spray="random", mtu=512)
    leaf_collectors, spine_collectors = net.install_collectors(job_id=1)
    StagedCollectiveRunner(net, 1, stages, iterations=iterations).run()
    net.finalize_collectors()

    model = ThreeLevelModel(SPEC, spraying="random", mtu=512)
    fast_runs = run_iterations3(model, demand, iterations, seed=11)

    for g in range(SPEC.n_leaves):
        packet_mean = np.mean(
            [r.total_bytes for r in leaf_collectors[g].records]
        )
        fast_mean = np.mean([run.leaves[g].total_bytes for run in fast_runs])
        assert packet_mean == fast_mean  # exact: lossless volume per leaf
    # Spine-tier totals agree too (inter-pod volume only).
    packet_spine = sum(
        r.total_bytes for c in spine_collectors.values() for r in c.records
    )
    fast_spine = sum(
        r.total_bytes for run in fast_runs for r in run.spines.values()
    )
    assert packet_spine == fast_spine


def test_misroute_rejected():
    net = make_net()
    with pytest.raises(KeyError):
        net.inject_fault("up:L9.9->S9.9", DropFault(0.1))
