"""Tests for the three-level statistical simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import locality_optimized_ring, ring_demand
from repro.threelevel import (
    ThreeLevelModel,
    ThreeLevelSpec,
    core_down_link,
    core_up_link,
    demand_by_leaf_pair,
    pod_down_link,
    run_iterations3,
    simulate_iteration3,
)
from repro.units import MIB

SPEC = ThreeLevelSpec(
    n_pods=4, leaves_per_pod=4, spines_per_pod=2, cores_per_spine=2, hosts_per_leaf=1
)
DEMAND = ring_demand(locality_optimized_ring(SPEC.n_hosts), 256 * MIB)


def test_demand_by_leaf_pair_drops_local():
    pairs = demand_by_leaf_pair(SPEC, DEMAND)
    # Ring over 16 leaf-major hosts: every edge crosses leaves.
    assert len(pairs) == 16
    assert all(src != dst for src, dst in pairs)


def test_record_structure(rng):
    model = ThreeLevelModel(SPEC, mtu=1024)
    records = simulate_iteration3(model, DEMAND, rng)
    assert len(records.leaves) == SPEC.n_leaves
    assert set(records.spines) == {
        (pod, s)
        for pod in range(SPEC.n_pods)
        for s in range(SPEC.spines_per_pod)
    }


def test_leaf_volume_conservation(rng):
    model = ThreeLevelModel(SPEC, mtu=1024)
    records = simulate_iteration3(model, DEMAND, rng)
    pairs = demand_by_leaf_pair(SPEC, DEMAND)
    for record in records.leaves:
        pod, leaf = record.leaf // SPEC.leaves_per_pod, record.leaf % SPEC.leaves_per_pod
        inbound = sum(v for (src, dst), v in pairs.items() if dst == (pod, leaf))
        assert record.total_bytes == inbound


def test_spine_records_carry_only_inter_pod_traffic(rng):
    model = ThreeLevelModel(SPEC, mtu=1024)
    records = simulate_iteration3(model, DEMAND, rng)
    pairs = demand_by_leaf_pair(SPEC, DEMAND)
    inter_pod_bytes = sum(
        v for ((sp, _), (dp, _)), v in ((k, v) for k, v in pairs.items()) if sp != dp
    )
    spine_total = sum(r.total_bytes for r in records.spines.values())
    # Spine ingress-from-core counts inter-pod traffic only (intra-pod
    # never reaches the cores); with no faults, it counts each byte once.
    assert spine_total == inter_pod_bytes


def test_intra_pod_traffic_spreads_over_pod_spines(rng):
    model = ThreeLevelModel(SPEC, mtu=1024)
    records = simulate_iteration3(model, DEMAND, rng)
    # Host 1 -> host 2 is intra-pod (pod 0); leaf (0,2) gets traffic on
    # both pod spines.
    record = records.leaves[SPEC.global_leaf(0, 2)]
    assert set(record.port_bytes) == {0, 1}


def test_core_fault_reduces_spine_port_volume(rng):
    fault = core_down_link(1, 1, 0)  # core 1 -> pod 1 spine 0
    healthy = ThreeLevelModel(SPEC, mtu=1024)
    faulty = ThreeLevelModel(SPEC, silent={fault: 0.5}, mtu=1024)
    h = simulate_iteration3(healthy, DEMAND, np.random.Generator(np.random.PCG64(3)))
    f = simulate_iteration3(faulty, DEMAND, np.random.Generator(np.random.PCG64(3)))
    h_volume = h.spines[(1, 0)].port_bytes.get(1, 0)
    f_volume = f.spines[(1, 0)].port_bytes.get(1, 0)
    assert f_volume < h_volume * 0.7


def test_pod_down_fault_hits_leaf_but_not_spine_records(rng):
    fault = pod_down_link(1, 0, 0)  # pod 1 spine 0 -> leaf 0
    healthy = ThreeLevelModel(SPEC, mtu=1024)
    faulty = ThreeLevelModel(SPEC, silent={fault: 0.5}, mtu=1024)
    h = simulate_iteration3(healthy, DEMAND, np.random.Generator(np.random.PCG64(4)))
    f = simulate_iteration3(faulty, DEMAND, np.random.Generator(np.random.PCG64(4)))
    target = SPEC.global_leaf(1, 0)
    assert f.leaves[target].port_bytes.get(0, 0) < h.leaves[target].port_bytes.get(0, 0) * 0.8
    # The spine tier sees *more* volume (retransmitted copies crossing
    # the cores again), never less: the fault is below it.
    assert f.spines[(1, 0)].total_bytes >= h.spines[(1, 0)].total_bytes


def test_known_disabled_core_link_unused(rng):
    dead = core_up_link(0, 0, 1)
    model = ThreeLevelModel(SPEC, known_disabled=frozenset({dead}), mtu=1024)
    records = simulate_iteration3(model, DEMAND, rng)
    # No pod-0 traffic arrives anywhere via core 1... from pod 0.
    for (pod, s), record in records.spines.items():
        assert record.sender_bytes.get((1, 0), 0) == 0


def test_run_iterations3_deterministic():
    model = ThreeLevelModel(SPEC, mtu=1024)
    a = run_iterations3(model, DEMAND, 2, seed=9)
    b = run_iterations3(model, DEMAND, 2, seed=9)
    for ra, rb in zip(a, b):
        assert [r.port_bytes for r in ra.leaves] == [r.port_bytes for r in rb.leaves]
        assert {k: v.port_bytes for k, v in ra.spines.items()} == {
            k: v.port_bytes for k, v in rb.spines.items()
        }


def test_fault_schedule3(rng):
    model = ThreeLevelModel(SPEC, mtu=1024)
    fault = pod_down_link(0, 1, 2)

    def schedule(iteration):
        return {fault: 0.5} if iteration == 1 else {}

    runs = run_iterations3(model, DEMAND, 3, seed=11, fault_schedule=schedule)
    target = SPEC.global_leaf(0, 2)
    series = [run.leaves[target].port_bytes.get(1, 0) for run in runs]
    assert series[1] < series[0] * 0.8
    assert abs(series[2] - series[0]) < series[0] * 0.2


def test_temporal_symmetry_three_level():
    model = ThreeLevelModel(SPEC, mtu=1024)
    runs = run_iterations3(model, DEMAND, 5, seed=13)
    for key in runs[0].spines:
        for core in runs[0].spines[key].port_bytes:
            series = [run.spines[key].port_bytes.get(core, 0) for run in runs]
            mean = np.mean(series)
            if mean > 0:
                assert np.std(series) / mean < 0.05
