"""Tests for the three-level topology and control plane."""

from __future__ import annotations

import pytest

from repro.threelevel import (
    ThreeLevelControlPlane,
    ThreeLevelError,
    ThreeLevelSpec,
    core_down_link,
    core_up_link,
    pod_down_link,
    pod_up_link,
)


SPEC = ThreeLevelSpec(
    n_pods=4, leaves_per_pod=4, spines_per_pod=2, cores_per_spine=2, hosts_per_leaf=1
)


def test_dimensions():
    assert SPEC.n_leaves == 16
    assert SPEC.n_cores == 4
    assert SPEC.n_hosts == 16


def test_validation():
    with pytest.raises(ThreeLevelError):
        ThreeLevelSpec(n_pods=1)
    with pytest.raises(ThreeLevelError):
        ThreeLevelSpec(leaves_per_pod=0)
    with pytest.raises(ThreeLevelError):
        ThreeLevelSpec(cores_per_spine=0)


def test_core_grouping_partitions_cores():
    seen = []
    for spine in range(SPEC.spines_per_pod):
        cores = list(SPEC.cores_of_spine(spine))
        seen.extend(cores)
        for core in cores:
            assert SPEC.spine_of_core(core) == spine
    assert sorted(seen) == list(range(SPEC.n_cores))


def test_host_to_leaf_mapping():
    assert SPEC.leaf_of_host(0) == (0, 0)
    assert SPEC.leaf_of_host(3) == (0, 3)
    assert SPEC.leaf_of_host(4) == (1, 0)
    assert SPEC.leaf_of_host(15) == (3, 3)
    assert SPEC.global_leaf(3, 3) == 15


def test_out_of_range():
    with pytest.raises(ThreeLevelError):
        SPEC.leaf_of_host(16)
    with pytest.raises(ThreeLevelError):
        SPEC.global_leaf(4, 0)
    with pytest.raises(ThreeLevelError):
        SPEC.cores_of_spine(2)
    with pytest.raises(ThreeLevelError):
        SPEC.spine_of_core(4)


def test_fabric_links_count():
    links = list(SPEC.fabric_links())
    # Per pod: leaves*spines*2 pod links + spines*cores_per_spine*2
    # core links.
    expected = SPEC.n_pods * (
        SPEC.leaves_per_pod * SPEC.spines_per_pod * 2
        + SPEC.spines_per_pod * SPEC.cores_per_spine * 2
    )
    assert len(links) == expected == len(set(links))


def test_intra_pod_valid_spines():
    plane = ThreeLevelControlPlane(SPEC)
    assert plane.valid_intra_pod_spines(0, 0, 1) == [0, 1]
    broken = ThreeLevelControlPlane(
        SPEC, known_disabled=frozenset({pod_up_link(0, 0, 1)})
    )
    assert broken.valid_intra_pod_spines(0, 0, 1) == [0]
    assert broken.valid_intra_pod_spines(0, 2, 1) == [0, 1]


def test_inter_pod_paths_all_healthy():
    plane = ThreeLevelControlPlane(SPEC)
    paths = plane.valid_inter_pod_paths(0, 0, 1, 2)
    # spines_per_pod * cores_per_spine combinations.
    assert len(paths) == 4
    assert all(core in SPEC.cores_of_spine(spine) for spine, core in paths)


def test_inter_pod_paths_respect_core_faults():
    dead = core_up_link(0, 1, 2)  # pod 0 spine 1 -> core 2
    plane = ThreeLevelControlPlane(SPEC, known_disabled=frozenset({dead}))
    paths = plane.valid_inter_pod_paths(0, 0, 1, 2)
    assert (1, 2) not in paths
    assert len(paths) == 3
    # Traffic from pod 1 is unaffected by pod 0's core uplink fault.
    assert len(plane.valid_inter_pod_paths(1, 0, 2, 0)) == 4


def test_inter_pod_paths_respect_core_down_faults():
    dead = core_down_link(3, 1, 1)  # core 3 -> pod 1 spine 1
    plane = ThreeLevelControlPlane(SPEC, known_disabled=frozenset({dead}))
    paths = plane.valid_inter_pod_paths(0, 0, 1, 2)
    assert (1, 3) not in paths
    # Pod 2 destinations unaffected.
    assert len(plane.valid_inter_pod_paths(0, 0, 2, 0)) == 4


def test_partition_raises():
    dead = frozenset(
        {pod_up_link(0, 0, s) for s in range(SPEC.spines_per_pod)}
    )
    plane = ThreeLevelControlPlane(SPEC, known_disabled=dead)
    with pytest.raises(ThreeLevelError):
        plane.valid_inter_pod_paths(0, 0, 1, 0)
    with pytest.raises(ThreeLevelError):
        plane.valid_intra_pod_spines(0, 0, 1)
