"""Smoke tests: every example must run to completion and print its
success line (examples are documentation that executes)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_every_example_is_covered_here():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {
        "quickstart.py",
        "silent_fault_hunt.py",
        "transient_fault_learning.py",
        "multi_job_isolation.py",
        "closed_loop_remediation.py",
        "three_level_fabric.py",
        "threshold_calibration.py",
    }
    assert scripts == covered


def test_quickstart():
    out = run_example("quickstart.py")
    assert "OK: silent fault caught and localized." in out


def test_silent_fault_hunt():
    out = run_example("silent_fault_hunt.py")
    assert "headline check (1.5% corruption): detected=True" in out
    assert "healthy-fabric control: detected=False" in out


def test_transient_fault_learning():
    out = run_example("transient_fault_learning.py")
    assert "healing" in out
    assert "rebaselined" in out
    assert "baselines adopted: 2" in out


def test_multi_job_isolation():
    out = run_example("multi_job_isolation.py")
    assert "OK: detection unaffected by background traffic." in out


def test_closed_loop_remediation():
    out = run_example("closed_loop_remediation.py")
    assert "OK: fault drained and symmetry restored." in out


def test_three_level_fabric():
    out = run_example("three_level_fabric.py")
    assert "OK: each tier catches the faults" in out


def test_threshold_calibration():
    out = run_example("threshold_calibration.py")
    assert "OK: both calibration procedures give working thresholds." in out
